"""Capture and diff telemetry snapshots — the perf-regression gate.

Usage::

    # run the deterministic smoke workload and save its counters
    python -m repro.tools.perf_report capture --out metrics.json

    # hold a snapshot to a stored baseline (CI: exit 1 on regression)
    python -m repro.tools.perf_report diff metrics.json \\
        --baseline tests/data/perf_baseline.json --rtol 0.1

    # human-readable dump of any snapshot
    python -m repro.tools.perf_report show metrics.json

``capture`` runs a small fixed workload — Wilson and domain-wall operator
applications, a CG solve on the normal equations, an SPMD solve over the
virtual communicator, and a plaquette sweep — under
``REPRO_TELEMETRY=counters`` and saves the registry snapshot with all
wall-clock-derived counters (``time/...``) stripped, leaving only nominal
counts: flops, sites, applies, halo bytes, collectives, iterations.
Those are invariants of the *code*, not the machine, so a diff against a
committed baseline catches silent cost growth (an extra operator apply
per iteration, doubled halo traffic, a dropped fused path) the moment a
PR introduces it.  ``--rtol`` absorbs the one legitimately
platform-sensitive family, solver iteration counts.

Exit codes: 0 clean, 1 regressions found, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "build_parser", "capture_snapshot"]


def capture_snapshot() -> dict:
    """Run the deterministic smoke workload; return its counter snapshot.

    Everything is seeded and the virtual comm backend is used explicitly,
    so two runs of this function on any machine produce identical counters
    up to solver iteration counts (floating-point accumulation order can
    shift an iteration across platforms — hence ``diff --rtol``).
    """
    import numpy as np

    from repro import telemetry
    from repro.comm import VirtualComm
    from repro.comm.rankgrid import RankGrid
    from repro.dirac import DomainWallDirac, WilsonDirac
    from repro.dirac.decomposed import DecomposedWilsonDirac
    from repro.fields import GaugeField, random_fermion
    from repro.lattice import Lattice4D
    from repro.loops import average_plaquette
    from repro.solvers import cg
    from repro.solvers.spmd import cg_spmd

    lat = Lattice4D((4, 4, 4, 4))
    gauge = GaugeField.warm(lat, eps=0.3, rng=41)
    with telemetry.telemetry_mode("counters"):
        telemetry.full_reset()
        # Wilson: forward applies + a normal-equations CG solve.
        wilson = WilsonDirac(gauge, mass=0.2)
        psi = random_fermion(lat, rng=42)
        out = np.empty_like(psi)
        for _ in range(4):
            wilson(psi, out=out)
        rhs = wilson.apply_dagger(psi)
        cg(wilson.normal_op(), rhs, tol=1e-8, max_iter=2000, guard="off")
        # Domain wall: forward applies.
        dwf = DomainWallDirac(gauge, mf=0.04, ls=4)
        psi5 = (
            np.random.default_rng(43).normal(size=dwf.field_shape())
            + 1j * np.random.default_rng(44).normal(size=dwf.field_shape())
        )
        out5 = np.empty_like(psi5)
        for _ in range(2):
            dwf(psi5, out=out5)
        # SPMD solve over the virtual backend: halo + collective counters.
        comm = VirtualComm(RankGrid((1, 1, 2, 2)))
        dop = DecomposedWilsonDirac(gauge, mass=0.2, comm=comm)
        cg_spmd(dop, psi, tol=1e-6, max_iter=2000, guard="off")
        # Coalesced multi-RHS solve through the serve queue (synchronous
        # flush: no coalesce-wait wall clock, so the ``serve/*`` and
        # ``batch/*`` counters are deterministic nominal counts).
        from repro.fields import point_source
        from repro.serve import SolveQueue

        queue = SolveQueue(max_nrhs=3)
        futures = [
            queue.submit(wilson, point_source(lat, (0, 0, 0, 0), spin=s, color=c))
            for s, c in ((0, 0), (0, 1), (1, 2), (3, 0))
        ]
        queue.flush()
        for f in futures:
            f.result(timeout=0)
        # Plaquette sweep.
        average_plaquette(gauge.u)
        snap = telemetry.snapshot()
        telemetry.full_reset()
    # Wall-clock counters are measurements, not invariants.
    snap["counters"] = {
        k: v
        for k, v in snap["counters"].items()
        if not (k.startswith("time/") or k.startswith("calls/"))
    }
    snap["histograms"] = {}
    # Keep the kernel-selection gauges (``kernel/<label>/backend/<name>``,
    # ``kernel/<label>/threads``): ``diff`` only compares counters, but
    # ``show`` needs them to attribute counter movement to the Dslash
    # backend the snapshot was captured with.
    snap["gauges"] = {
        k: v for k, v in snap["gauges"].items() if k.startswith("kernel/")
    }
    return snap


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = p.add_subparsers(dest="command", required=True)

    cap = sub.add_parser("capture", help="run the smoke workload, save counters")
    cap.add_argument("--out", type=Path, required=True, help="snapshot JSON path")

    diff = sub.add_parser("diff", help="compare a snapshot against a baseline")
    diff.add_argument("current", type=Path, help="snapshot JSON to check")
    diff.add_argument(
        "--baseline", type=Path, required=True, help="stored baseline JSON"
    )
    diff.add_argument(
        "--rtol",
        type=float,
        default=0.0,
        help="relative tolerance per counter (default: exact)",
    )

    show = sub.add_parser("show", help="print a snapshot as a table")
    show.add_argument("snapshot", type=Path)
    return p


def _cmd_capture(args) -> int:
    from repro.telemetry import save_snapshot

    snap = capture_snapshot()
    save_snapshot(args.out, snap)
    print(f"captured {len(snap['counters'])} counters -> {args.out}")
    return 0


def _cmd_diff(args) -> int:
    from repro.telemetry import diff_snapshots, load_snapshot

    try:
        current = load_snapshot(args.current)
        baseline = load_snapshot(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    regressions = diff_snapshots(current, baseline, rtol=args.rtol)
    if not regressions:
        n = len(baseline.get("counters", {}))
        print(f"ok: {n} baseline counters reproduced (rtol {args.rtol:g})")
        return 0
    print(f"{len(regressions)} counter(s) moved outside rtol {args.rtol:g}:")
    for r in regressions:
        print(f"  {r.describe()}")
    return 1


def _cmd_show(args) -> int:
    from repro.telemetry import MetricsRegistry, load_snapshot, report

    try:
        snap = load_snapshot(args.snapshot)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    reg = MetricsRegistry()
    reg.merge(snap)
    print(report(reg))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "capture":
        return _cmd_capture(args)
    if args.command == "diff":
        return _cmd_diff(args)
    return _cmd_show(args)


if __name__ == "__main__":
    raise SystemExit(main())

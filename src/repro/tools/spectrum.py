"""Measure the hadron spectrum on a stored configuration.

Usage::

    python -m repro.tools.spectrum --config ensemble/cfg_0000.npz \
        --mass 0.35 --tol 1e-8
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.io import load_gauge
from repro.measure import measure_spectrum

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--config", type=Path, required=True, help="cfg .npz file")
    p.add_argument("--mass", type=float, required=True, help="valence quark mass")
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--tmin", type=int, default=None)
    p.add_argument("--tmax", type=int, default=None)
    p.add_argument("--no-nucleon", action="store_true")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    gauge, meta = load_gauge(args.config)
    print(f"configuration : {args.config} (metadata: {meta})")
    window = None
    if args.tmin is not None and args.tmax is not None:
        window = (args.tmin, args.tmax)
    res = measure_spectrum(
        gauge,
        args.mass,
        tol=args.tol,
        fit_window=window,
        include_nucleon=not args.no_nucleon,
    )
    print(res.summary())
    print("\ncorrelators (t, pion, rho):")
    c_pi = res.correlators["pion"]
    c_rho = res.correlators["rho"]
    for t in range(len(c_pi)):
        print(f"  {t:3d}  {c_pi[t]:.6e}  {c_rho[t]:.6e}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

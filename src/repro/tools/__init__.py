"""Command-line tools.

Each tool is runnable as ``python -m repro.tools.<name>`` and mirrors one
stage of a production campaign:

* ``generate_ensemble`` — heatbath/HMC gauge generation to an npz ensemble;
* ``spectrum``          — hadron masses from a stored configuration;
* ``scaling``           — the machine-model weak/strong scaling tables;
* ``fix_gauge``         — Landau/Coulomb gauge fixing of a stored config;
* ``run_campaign``      — fault-tolerant checkpoint/resume campaign driver;
* ``check_config``      — SDC audit of stored configs (CRC, unitarity,
  plaquette vs header metadata); nonzero exit on violation.
* ``serve``             — coalescing solve-queue smoke: submit a request
  burst, report batching factor, throughput and the ``serve/*``
  counters; nonzero exit on any non-converged solve.
* ``store``             — content-addressed ensemble store: ingest loose
  ensembles or campaign checkpoints, list/export/audit/gc stored
  configs, and serve cached measurements (``store/*`` counter summary,
  ``--sync-faults`` applies a campaign's heal/rollback journal to the
  measurement cache first).
"""

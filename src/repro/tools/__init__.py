"""Command-line tools.

Each tool is runnable as ``python -m repro.tools.<name>`` and mirrors one
stage of a production campaign:

* ``generate_ensemble`` — heatbath/HMC gauge generation to an npz ensemble;
* ``spectrum``          — hadron masses from a stored configuration;
* ``scaling``           — the machine-model weak/strong scaling tables;
* ``fix_gauge``         — Landau/Coulomb gauge fixing of a stored config.
"""

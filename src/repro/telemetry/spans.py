"""Span-based tracing with Chrome trace-event / Perfetto export.

``span("dslash")`` times a region; spans nest (a module-level stack tracks
the open path), survive exceptions (``__exit__`` always closes and records,
stamping an ``error`` arg), and are cheap enough to wrap solver-level and
trajectory-level regions unconditionally — the mode check inside
``__enter__``/``__exit__`` makes an off-mode span two attribute loads and
two branches.

In ``counters`` mode a closing span accumulates ``time/<name>`` (seconds)
and ``calls/<name>`` in the global registry — the data behind the
:func:`repro.telemetry.report` breakdown table, the role
``util.timing.StopWatch`` used to play.  In ``trace`` mode it additionally
appends one complete ("X") event to the process trace buffer, which
:func:`export_chrome_trace` serialises in the Chrome trace-event JSON
format (the ``{"traceEvents": [...]}`` envelope with ``ph``/``ts``/``dur``
in microseconds) that ``chrome://tracing`` and Perfetto load directly.
Comm events (:mod:`repro.comm.trace`) enter the same buffer as instant
("i") events, so halo messages and collectives line up under the solver
spans that caused them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.telemetry.registry import get_registry
from repro.telemetry.state import STATE

__all__ = [
    "TraceBuffer",
    "get_trace_buffer",
    "span",
    "instant",
    "counter_event",
    "current_span_path",
    "export_chrome_trace",
    "save_chrome_trace",
]

#: Trace-buffer cap: a runaway trace-mode loop drops events (counted) past
#: this instead of exhausting memory.
MAX_EVENTS = 1_000_000


class TraceBuffer:
    """An append-only list of Chrome-trace events with a hard cap.

    Events are stored as ready-to-serialise dicts; timestamps are
    microseconds relative to the buffer epoch (``perf_counter_ns`` at
    construction or last :meth:`clear`), which keeps the JSON small and is
    exactly what the trace-event format expects.
    """

    def __init__(self, max_events: int = MAX_EVENTS) -> None:
        self.max_events = int(max_events)
        self.events: list[dict] = []
        self.dropped = 0
        self.epoch_ns = time.perf_counter_ns()

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self.epoch_ns = time.perf_counter_ns()

    def _push(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def ts_us(self, t_ns: int) -> float:
        return (t_ns - self.epoch_ns) / 1000.0

    def add_complete(
        self,
        name: str,
        t0_ns: int,
        t1_ns: int,
        cat: str = "repro",
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": self.ts_us(t0_ns),
            "dur": (t1_ns - t0_ns) / 1000.0,
            "pid": os.getpid(),
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._push(event)

    def add_instant(
        self, name: str, cat: str = "repro", tid: int = 0, args: dict | None = None
    ) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": self.ts_us(time.perf_counter_ns()),
            "pid": os.getpid(),
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._push(event)

    def add_counter(self, name: str, values: dict[str, float], tid: int = 0) -> None:
        self._push(
            {
                "name": name,
                "cat": "repro",
                "ph": "C",
                "ts": self.ts_us(time.perf_counter_ns()),
                "pid": os.getpid(),
                "tid": tid,
                "args": dict(values),
            }
        )


#: The process-global trace buffer (one thread of control per process).
_BUFFER = TraceBuffer()

#: The open-span name stack; exception-safe by construction (``__exit__``
#: pops in all control flows, including unwinding).
_SPAN_STACK: list[str] = []


def get_trace_buffer() -> TraceBuffer:
    return _BUFFER


def current_span_path() -> str:
    """``"outer/inner"`` path of the open spans ("" outside any span)."""
    return "/".join(_SPAN_STACK)


class span:
    """Nestable, exception-safe timed region.

    >>> with span("dslash", mu=0):
    ...     pass

    Usable at any telemetry mode; at ``off`` it records nothing and skips
    the clock reads.  The measured duration is exposed as ``elapsed``
    (seconds) for callers that want the number regardless of mode (the
    StopWatch shim), via ``always_time=True``.
    """

    __slots__ = ("name", "cat", "args", "elapsed", "always_time", "_t0", "_recording")

    def __init__(
        self, name: str, cat: str = "repro", always_time: bool = False, **args
    ) -> None:
        self.name = name
        self.cat = cat
        self.args = args or None
        self.elapsed = 0.0
        self.always_time = always_time
        self._t0 = 0
        self._recording = False

    def __enter__(self) -> "span":
        self._recording = STATE.active
        if self._recording:
            _SPAN_STACK.append(self.name)
        if self._recording or self.always_time:
            self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not (self._recording or self.always_time):
            return
        t1 = time.perf_counter_ns()
        self.elapsed = (t1 - self._t0) / 1e9
        if not self._recording:
            return
        _SPAN_STACK.pop()
        if STATE.counting:
            reg = get_registry()
            reg.add(f"time/{self.name}", self.elapsed)
            reg.add(f"calls/{self.name}", 1)
        if STATE.tracing:
            args = self.args
            if exc_type is not None:
                args = dict(args or {})
                args["error"] = exc_type.__name__
            _BUFFER.add_complete(self.name, self._t0, t1, cat=self.cat, args=args)


def instant(name: str, cat: str = "repro", **args) -> None:
    """Record an instant event (trace mode only; no-op otherwise)."""
    if STATE.tracing:
        _BUFFER.add_instant(name, cat=cat, args=args or None)


def counter_event(name: str, **values: float) -> None:
    """Record a Chrome counter ("C") event — e.g. a residual-vs-time series."""
    if STATE.tracing:
        _BUFFER.add_counter(name, values)


def export_chrome_trace(buffer: TraceBuffer | None = None) -> dict:
    """The Chrome trace-event JSON document for ``buffer`` (default: global).

    The envelope form (``{"traceEvents": [...]}``) is the one both
    ``chrome://tracing`` and Perfetto accept; a leading metadata ("M")
    event names the process.
    """
    buffer = buffer if buffer is not None else _BUFFER
    pid = os.getpid()
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    doc = {
        "traceEvents": meta + list(buffer.events),
        "displayTimeUnit": "ms",
    }
    if buffer.dropped:
        doc["otherData"] = {"dropped_events": buffer.dropped}
    return doc


def save_chrome_trace(path: str | Path, buffer: TraceBuffer | None = None) -> Path:
    """Write :func:`export_chrome_trace` JSON to ``path``."""
    path = Path(path)
    path.write_text(
        json.dumps(export_chrome_trace(buffer), indent=1) + "\n", encoding="utf-8"
    )
    return path

"""Hot-path instrumentation helpers shared by operators and solvers.

These are the only telemetry functions that sit *inside* per-application
code paths, so they are written for minimal dispatch cost: the caller has
already checked ``STATE.active`` (one attribute load and branch — the
entire price of ``REPRO_TELEMETRY=off``), and everything label-related is
resolved once per operator and cached on the instance.

Counter names they emit (the counter-exactness goldens pin these):

``applies/<label>``
    Operator applications through ``LinearOperator.__call__``.
``flops/<label>``
    Nominal flops: ``applies x flops_per_apply``, community-convention
    counts (1320/site Wilson Dslash class).
``sites/<label>``
    Lattice sites processed (x ``Ls`` for 5-D domain-wall fields).
``batch/<label>/applies`` and ``batch/<label>/rhs``
    Batched (multi-RHS) operator applications and the RHS columns they
    carried — ``rhs / applies`` is the achieved mean batch width.
"""

from __future__ import annotations

import time

import numpy as np

from repro.telemetry.registry import get_registry
from repro.telemetry.spans import get_trace_buffer
from repro.telemetry.state import STATE

__all__ = [
    "operator_label",
    "timed_apply",
    "timed_apply_batch",
    "record_kernel_selection",
    "record_solve",
]


def operator_label(op) -> str:
    """The operator's counter label (cached; class name fallback)."""
    label = getattr(op, "telemetry_label", None)
    if label is None:
        label = type(op).__name__.lower()
        try:
            op.telemetry_label = label
        except AttributeError:
            pass
    return label


def timed_apply(op, x, out):
    """One instrumented operator application (caller checked ``STATE.active``).

    Counts nominal flops/sites/applies in ``counters`` mode and emits one
    complete trace event per application in ``trace`` mode.  The arithmetic
    is exactly the uninstrumented dispatch — telemetry only observes.
    """
    tracing = STATE.tracing
    if tracing:
        t0 = time.perf_counter_ns()
    result = op.apply(x) if out is None else op.apply_into(x, out)
    if STATE.counting:
        label = operator_label(op)
        reg = get_registry()
        reg.add(f"applies/{label}", 1)
        reg.add(f"flops/{label}", op.flops_per_apply)
        sites = getattr(op, "telemetry_sites", 0)
        if sites:
            reg.add(f"sites/{label}", sites)
        if tracing:
            get_trace_buffer().add_complete(
                label, t0, time.perf_counter_ns(), cat="operator"
            )
    return result


def timed_apply_batch(op, X, out, dagger=False):
    """One instrumented multi-RHS application over an ``(nrhs, ...)`` block.

    The per-RHS counters (applies/flops/sites) advance by ``nrhs`` so the
    counter-exactness goldens see a batched solve as exactly the same
    work as the equivalent looped solve; the ``batch/*`` pair records the
    batching itself.
    """
    nrhs = X.shape[0]
    tracing = STATE.tracing
    if tracing:
        t0 = time.perf_counter_ns()
    if out is None:
        out = np.empty_like(X)
    result = (
        op.apply_dagger_batch_into(X, out) if dagger else op.apply_batch_into(X, out)
    )
    if STATE.counting:
        label = operator_label(op)
        reg = get_registry()
        reg.add(f"applies/{label}", nrhs)
        reg.add(f"flops/{label}", op.flops_per_apply * nrhs)
        sites = getattr(op, "telemetry_sites", 0)
        if sites:
            reg.add(f"sites/{label}", sites * nrhs)
        reg.add(f"batch/{label}/applies", 1)
        reg.add(f"batch/{label}/rhs", nrhs)
        if tracing:
            get_trace_buffer().add_complete(
                label, t0, time.perf_counter_ns(), cat="operator"
            )
    return result


def record_kernel_selection(op) -> None:
    """Record which Dslash backend an operator resolved to (gauges).

    Called once at operator construction (no-op when telemetry is off),
    so ``perf_report show`` can attribute counter diffs to the kernel in
    use.  Gauges, not counters: the selection is a fact about the run,
    not an accumulating quantity, and the counter-exactness goldens stay
    backend-independent.

    ``kernel/<label>/backend/<kernel_name>``
        1.0 for the backend the operator constructed.
    ``kernel/<label>/threads``
        The kernel's thread count (1 for the NumPy single-threaded
        tiers; the resolved ``REPRO_KERNEL_THREADS`` value for
        ``compiled``).
    """
    if not STATE.counting:
        return
    name = getattr(op, "kernel_name", None)
    if not name:
        return
    label = operator_label(op)
    threads = getattr(getattr(op, "_kernel", None), "threads", 1)
    reg = get_registry()
    reg.set_gauge(f"kernel/{label}/backend/{name}", 1.0)
    reg.set_gauge(f"kernel/{label}/threads", float(threads))


def record_solve(
    label: str,
    iterations: int,
    converged: bool,
    residual: float,
    linalg_flops: int = 0,
    restarts: int = 0,
    inner_iterations: int = 0,
) -> None:
    """Per-solve counter bundle (call unconditionally; no-op when off).

    ``restarts`` counts guard-driven reliable updates / restarts — the
    "solver work redone" number the campaign metrics surface.
    """
    if not STATE.counting:
        return
    reg = get_registry()
    base = f"solver/{label}"
    reg.add(f"{base}/solves", 1)
    reg.add(f"{base}/iterations", iterations)
    if linalg_flops:
        reg.add(f"{base}/linalg_flops", linalg_flops)
    if restarts:
        reg.add(f"{base}/restarts", restarts)
    if inner_iterations:
        reg.add(f"{base}/inner_iterations", inner_iterations)
    if not converged:
        reg.add(f"{base}/failures", 1)
    reg.observe(f"{base}/iterations_per_solve", iterations)
    reg.set_gauge(f"{base}/last_residual", residual)

"""The process-local metrics registry: named counters, gauges, histograms.

Production lattice codes instrument their hot paths with exactly this kind
of registry — Chroma reports per-kernel flop totals and solver iteration
budgets, the QCDOC work reports measured compute/communication fractions —
and the numbers are *nominal*, community-convention counts (1320 flops per
Wilson Dslash site) so runs are comparable across machines.

Counters here follow the same discipline:

* increments are allocation-free on the hot path (one dict store; counter
  handles pre-resolve the dict slot so repeated increments touch no keys);
* every count is exact by construction — operators charge
  ``flops_per_apply`` per application, the comm layer charges the byte
  counts it actually copies — which is what the counter-exactness golden
  tests assert against analytic per-site values;
* naming is hierarchical with ``/`` separators (``flops/dslash_wilson``,
  ``comm/halo_bytes``, ``solver/cg/iterations``) so snapshots diff and
  aggregate cleanly.

The module-level helpers (:func:`add`, :func:`inc`, :func:`set_gauge`,
:func:`observe`) write to the process-global registry and are no-ops when
telemetry is off.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.state import STATE, get_mode

__all__ = [
    "SNAPSHOT_SCHEMA",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "add",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "reset",
    "save_snapshot",
    "load_snapshot",
]

SNAPSHOT_SCHEMA = "repro-telemetry-snapshot/1"

#: Default histogram bucket upper bounds (powers of two cover iteration
#: counts and byte sizes alike); the last bucket is the +Inf overflow.
DEFAULT_BUCKETS = tuple(2**k for k in range(0, 21, 2))


class Counter:
    """A pre-resolved handle on one registry counter.

    ``add`` is a single attribute increment — the zero-allocation hot-path
    increment the registry promises.  Handles stay valid across
    :meth:`MetricsRegistry.reset` (reset zeroes them in place).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int | float = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value!r})"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary statistics."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for one process.

    The registry itself is mode-agnostic — it counts whenever asked.  The
    mode switch lives at the instrumentation sites (and in the module-level
    helpers below), so a registry can also be used directly, e.g. by tests
    or by the worker-rank gather.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- write paths ----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The (created-on-first-use) counter handle for ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def add(self, name: str, n: int | float = 1) -> None:
        self.counter(name).add(n)

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- read paths -----------------------------------------------------------

    def get(self, name: str, default: int | float = 0) -> int | float:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def gauge(self, name: str, default: float | None = None) -> float | None:
        return self._gauges.get(name, default)

    def counters(self) -> dict[str, int | float]:
        """Counter name -> value, sorted by name."""
        return {k: self._counters[k].value for k in sorted(self._counters)}

    def snapshot(self) -> dict:
        """A JSON-able, self-describing snapshot of everything recorded."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "mode": get_mode(),
            "counters": self.counters(),
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].as_dict() for k in sorted(self._histograms)
            },
        }

    # -- maintenance ----------------------------------------------------------

    def merge(self, snapshot: dict, prefix: str = "") -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counter values add; gauges overwrite; histogram summaries are
        re-observed as (count, sum, min, max) is not mergeable bucket-free,
        so bucket counts add when the bounds match and are dropped (with
        the summary kept via counters) otherwise.  ``prefix`` namespaces
        everything — the ShmComm teardown gather stores worker registries
        as ``rank<r>/...``.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.add(prefix + name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(prefix + name, value)
        for name, h in snapshot.get("histograms", {}).items():
            mine = self.histogram(prefix + name, tuple(h.get("bounds", DEFAULT_BUCKETS)))
            if list(mine.bounds) == list(h.get("bounds", [])):
                for i, c in enumerate(h.get("bucket_counts", [])):
                    mine.bucket_counts[i] += c
                mine.count += h.get("count", 0)
                mine.total += h.get("sum", 0.0)
                if h.get("min") is not None:
                    mine.min = min(mine.min, h["min"])
                if h.get("max") is not None:
                    mine.max = max(mine.max, h["max"])

    def reset(self) -> None:
        """Zero every metric in place (existing handles stay live)."""
        for c in self._counters.values():
            c.value = 0
        self._gauges.clear()
        for name in list(self._histograms):
            self._histograms[name] = Histogram(name, self._histograms[name].bounds)


#: The process-global registry all instrumentation sites write to.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def add(name: str, n: int | float = 1) -> None:
    """Increment a global counter (no-op unless counters are on)."""
    if STATE.counting:
        _REGISTRY.add(name, n)


def inc(name: str) -> None:
    """Increment a global counter by one (no-op unless counters are on)."""
    if STATE.counting:
        _REGISTRY.add(name, 1)


def set_gauge(name: str, value: float) -> None:
    """Set a global gauge (no-op unless counters are on)."""
    if STATE.counting:
        _REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Observe into a global histogram (no-op unless counters are on)."""
    if STATE.counting:
        _REGISTRY.observe(name, value)


def snapshot() -> dict:
    """Snapshot of the global registry."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Zero the global registry (tests and fresh measurement windows)."""
    _REGISTRY.reset()


def save_snapshot(path: str | Path, snap: dict | None = None) -> Path:
    """Write a snapshot (default: the global registry's) as JSON."""
    path = Path(path)
    snap = snap if snap is not None else snapshot()
    path.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot written by :func:`save_snapshot` (schema-checked)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = data.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} is not {SNAPSHOT_SCHEMA!r} "
            "(not a telemetry snapshot?)"
        )
    return data

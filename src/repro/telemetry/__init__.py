"""repro.telemetry — the unified observability layer.

One low-overhead subsystem threaded through kernels, solvers, comm, HMC,
guard and campaign, switched by ``REPRO_TELEMETRY``:

``off`` (default)
    Hot paths pay one attribute check; nothing is recorded and nothing in
    the physics changes (bit-for-bit, asserted by the parity tests).
``counters``
    A process-local :class:`MetricsRegistry` accumulates named counters,
    gauges and histograms — nominal flops (1320/site Wilson Dslash class),
    lattice sites, halo bytes, allreduce count, solver iterations and
    restarts, guard probes/heals, checkpoint bytes.
``trace``
    Counters plus span-based tracing: nestable, exception-safe
    :func:`span` regions and comm instants, exported as Chrome
    trace-event / Perfetto-compatible JSON via
    :func:`export_chrome_trace`, and a human :func:`report` table.

Quickstart::

    from repro import telemetry

    with telemetry.telemetry_mode("counters"):
        result = cg(dirac.normal_op(), rhs)
    print(telemetry.report())
    telemetry.save_snapshot("metrics.json")

Per-rank aggregation: a closing :class:`~repro.comm.shm.ShmComm` gathers
every worker's registry into the master's as ``rank<r>/...`` counters.
The ``repro.tools.perf_report`` CLI diffs saved snapshots against a
baseline, which is how CI holds perf PRs to these numbers.
"""

from repro.telemetry.state import (
    TELEMETRY_ENV_VAR,
    TELEMETRY_MODES,
    STATE,
    get_mode,
    resolve_mode,
    set_mode,
    telemetry_mode,
)
from repro.telemetry.registry import (
    SNAPSHOT_SCHEMA,
    Counter,
    Histogram,
    MetricsRegistry,
    add,
    get_registry,
    inc,
    load_snapshot,
    observe,
    reset,
    save_snapshot,
    set_gauge,
    snapshot,
)
from repro.telemetry.spans import (
    TraceBuffer,
    counter_event,
    current_span_path,
    export_chrome_trace,
    get_trace_buffer,
    instant,
    save_chrome_trace,
    span,
)
from repro.telemetry.report import Regression, diff_snapshots, report

__all__ = [
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_MODES",
    "STATE",
    "get_mode",
    "resolve_mode",
    "set_mode",
    "telemetry_mode",
    "SNAPSHOT_SCHEMA",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "add",
    "get_registry",
    "inc",
    "load_snapshot",
    "observe",
    "reset",
    "save_snapshot",
    "set_gauge",
    "snapshot",
    "TraceBuffer",
    "counter_event",
    "current_span_path",
    "export_chrome_trace",
    "get_trace_buffer",
    "instant",
    "save_chrome_trace",
    "span",
    "Regression",
    "diff_snapshots",
    "report",
]


def full_reset() -> None:
    """Clear the global registry *and* trace buffer (tests, fresh windows)."""
    reset()
    get_trace_buffer().clear()

"""Backwards-compatibility shims over the telemetry layer.

:class:`StopWatch` predates :mod:`repro.telemetry`; it is now a thin alias
over telemetry spans so existing callers keep their ``laps`` / ``counts`` /
``breakdown`` API while every lap also lands in the metrics registry
(``time/<name>``, ``calls/<name>``) and — in trace mode — in the Chrome
trace buffer.  New code should use :func:`repro.telemetry.span` directly.

Laps may start/stop in any interleaving (the old contract), so the shim
records complete events straight into the trace buffer rather than through
the strictly-nested span stack.
"""

from __future__ import annotations

import time
import warnings

from repro.telemetry.registry import get_registry
from repro.telemetry.spans import get_trace_buffer
from repro.telemetry.state import STATE

__all__ = ["StopWatch"]


class StopWatch:
    """Accumulating timer with named laps (deprecated shim).

    Same observable behaviour as the pre-telemetry ``util.timing.StopWatch``
    — laps accumulate regardless of telemetry mode — plus registry/trace
    feeds when telemetry is on.
    """

    def __init__(self) -> None:
        warnings.warn(
            "repro.util.timing.StopWatch is deprecated; use "
            "repro.telemetry.span (and repro.telemetry.report) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.laps: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._open: dict[str, int] = {}

    def start(self, name: str) -> None:
        self._open[name] = time.perf_counter_ns()

    def stop(self, name: str) -> None:
        t0 = self._open.pop(name)
        t1 = time.perf_counter_ns()
        elapsed = (t1 - t0) / 1e9
        self.laps[name] = self.laps.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1
        if STATE.counting:
            reg = get_registry()
            reg.add(f"time/{name}", elapsed)
            reg.add(f"calls/{name}", 1)
        if STATE.tracing:
            get_trace_buffer().add_complete(name, t0, t1, cat="stopwatch")

    def total(self) -> float:
        return sum(self.laps.values())

    def breakdown(self) -> dict[str, float]:
        """Fraction of total time per phase."""
        tot = self.total()
        if tot == 0.0:
            return {k: 0.0 for k in self.laps}
        return {k: v / tot for k, v in self.laps.items()}

"""Telemetry mode resolution and the process-global on/off switches.

One process-local state object drives every instrumentation site::

    REPRO_TELEMETRY=off        (default) hot paths pay one attribute check
    REPRO_TELEMETRY=counters   named counters/gauges/histograms accumulate
    REPRO_TELEMETRY=trace      counters plus span/instant trace events

The hot-path contract is that ``off`` is a no-op: call sites guard on
:data:`STATE` booleans (plain attribute loads, no function call in the
fastest paths) and skip *all* telemetry work — no label formatting, no
timestamping, no dict traffic — when telemetry is off.  Switching modes
never touches the physics: instrumentation only observes values the hot
loops already compute, which is what the off/counters/trace bit-parity
tests pin down.
"""

from __future__ import annotations

import contextlib
import os

__all__ = [
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_MODES",
    "STATE",
    "resolve_mode",
    "get_mode",
    "set_mode",
    "telemetry_mode",
]

TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"
TELEMETRY_MODES = ("off", "counters", "trace")


def resolve_mode(name: str | None = None) -> str:
    """Resolve a telemetry mode: argument > ``$REPRO_TELEMETRY`` > ``off``."""
    if name is None:
        name = os.environ.get(TELEMETRY_ENV_VAR, "").strip() or "off"
    if name not in TELEMETRY_MODES:
        raise ValueError(
            f"unknown telemetry mode {name!r}; available: {TELEMETRY_MODES}"
        )
    return name


class _TelemetryState:
    """Mode flags read by every instrumentation site.

    ``counting`` is true in both ``counters`` and ``trace`` mode (tracing
    implies counting, as in Chroma's QDP profiling); ``active`` is the
    single check hot paths make before doing any telemetry work at all.
    """

    __slots__ = ("mode", "active", "counting", "tracing")

    def __init__(self, mode: str) -> None:
        self.set(mode)

    def set(self, mode: str) -> None:
        mode = resolve_mode(mode)
        self.mode = mode
        self.active = mode != "off"
        self.counting = mode in ("counters", "trace")
        self.tracing = mode == "trace"


#: The process-global switch; import the *object* (not its fields) so mode
#: changes made by :func:`set_mode` are seen everywhere.
STATE = _TelemetryState(resolve_mode())


def get_mode() -> str:
    """The current telemetry mode."""
    return STATE.mode


def set_mode(mode: str) -> str:
    """Switch the process-local telemetry mode; returns the previous mode."""
    previous = STATE.mode
    STATE.set(mode)
    return previous


@contextlib.contextmanager
def telemetry_mode(mode: str):
    """Context manager: run a block under ``mode``, then restore."""
    previous = set_mode(mode)
    try:
        yield STATE
    finally:
        set_mode(previous)

"""Human-readable telemetry reports and snapshot diffing.

:func:`report` renders the counters and span-time breakdown of a registry
as paper-style tables (the interactive "what did this run cost" view);
:func:`diff_snapshots` is the machine check behind the
``repro.tools.perf_report`` CLI — it compares a snapshot against a stored
baseline and returns the regressions, so CI can hold every future perf PR
to the counters this layer records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.report import Table, format_bytes, format_si

__all__ = ["report", "Regression", "diff_snapshots"]


def _counter_fmt(name: str, value: float) -> str:
    if name.endswith("_bytes") or name.endswith("/bytes"):
        return format_bytes(value)
    if name.startswith("flops/") or name.endswith("_flops"):
        return format_si(float(value), "F")
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def report(registry=None) -> str:
    """Render the registry (default: global) as counter + timing tables."""
    from repro.telemetry.registry import get_registry

    reg = registry if registry is not None else get_registry()
    counters = reg.counters()
    times = {
        k[len("time/"):]: v for k, v in counters.items() if k.startswith("time/")
    }
    calls = {
        k[len("calls/"):]: v for k, v in counters.items() if k.startswith("calls/")
    }
    plain = {
        k: v
        for k, v in counters.items()
        if not (k.startswith("time/") or k.startswith("calls/"))
    }

    parts: list[str] = []
    if plain:
        t = Table("telemetry counters", ["counter", "value", "pretty"])
        for name, value in plain.items():
            t.add_row([name, value, _counter_fmt(name, value)])
        parts.append(t.render())
    if times:
        total = sum(times.values()) or 1.0
        t = Table(
            "span timing breakdown",
            ["span", "calls", "total [s]", "mean [ms]", "share [%]"],
        )
        for name in sorted(times, key=times.get, reverse=True):
            n = calls.get(name, 0)
            t.add_row(
                [
                    name,
                    n,
                    times[name],
                    1e3 * times[name] / n if n else 0.0,
                    100.0 * times[name] / total,
                ]
            )
        parts.append(t.render())
    gauges = reg.snapshot()["gauges"]
    if gauges:
        t = Table("gauges", ["gauge", "value"])
        for name, value in gauges.items():
            t.add_row([name, value])
        parts.append(t.render())
    if not parts:
        return "telemetry: nothing recorded (mode off, or no instrumented work ran)"
    return "\n\n".join(parts)


@dataclass(frozen=True)
class Regression:
    """One counter that moved outside tolerance relative to the baseline."""

    name: str
    baseline: float
    current: float | None  # None: counter missing from the current snapshot
    rel_change: float | None

    def describe(self) -> str:
        if self.current is None:
            return f"{self.name}: present in baseline ({self.baseline}) but missing"
        return (
            f"{self.name}: {self.baseline} -> {self.current} "
            f"({100.0 * self.rel_change:+.2f}%)"
        )


def diff_snapshots(
    current: dict,
    baseline: dict,
    rtol: float = 0.0,
    ignore_prefixes: tuple[str, ...] = ("time/",),
) -> list[Regression]:
    """Counters in ``baseline`` that ``current`` fails to reproduce.

    Every baseline counter must exist in ``current`` with a relative change
    of at most ``rtol`` in either direction (nominal counts are exact, so
    the CI baseline check runs with a small ``rtol`` only to absorb
    platform-dependent solver iteration counts).  Wall-clock-derived
    counters (``time/...`` by default) are skipped: they are measurements,
    not invariants.
    """
    cur = current.get("counters", {})
    out: list[Regression] = []
    for name, base in baseline.get("counters", {}).items():
        if any(name.startswith(p) for p in ignore_prefixes):
            continue
        if name not in cur:
            out.append(Regression(name, base, None, None))
            continue
        value = cur[name]
        if base == 0:
            rel = 0.0 if value == 0 else float("inf")
        else:
            rel = (value - base) / base
        if abs(rel) > rtol:
            out.append(Regression(name, base, value, rel))
    return out

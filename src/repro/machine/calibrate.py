"""Calibration: build a machine spec for *this* host's Python kernels.

E9 validates the time model against reality at the only scale we can
measure — one Python process.  We time the actual numpy Dslash, convert to
a sustained flop rate, and construct a single-node spec whose model
predictions must then match further measurements within a stated tolerance.

With the process-parallel backends the *network* side becomes measurable
too: an shm "link" is a memcpy through shared memory, a tcp "link" is a
loopback (or real Ethernet) socket, and :func:`host_comm_spec` builds a
per-backend spec from the measured bandwidth and latency of each — the
second anchor the E22 comm-model validation compares modelled scaling
curves against.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from repro.dirac.hopping import hopping_term
from repro.fields import GaugeField, random_fermion
from repro.lattice import Lattice4D
from repro.machine.spec import MachineSpec
from repro.util.flops import WILSON_DSLASH_FLOPS_PER_SITE

__all__ = [
    "measured_dslash_rate",
    "calibrate_python_node",
    "measured_memcpy_bandwidth",
    "measured_tcp_link",
    "host_comm_spec",
]


def measured_dslash_rate(
    lattice: Lattice4D,
    repeats: int = 3,
    rng: int = 12345,
    dtype=None,
) -> tuple[float, float]:
    """(sites/s, nominal flop/s) of the numpy Dslash on ``lattice``.

    Best-of-``repeats`` timing to suppress scheduler noise, as the
    optimisation guide recommends for sub-second kernels.
    """
    import numpy as np

    dtype = dtype or np.complex128
    gauge = GaugeField.hot(lattice, rng=rng, dtype=dtype)
    psi = random_fermion(lattice, rng=rng + 1, dtype=dtype)
    hopping_term(gauge.u, psi)  # warm-up (allocator, caches)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        hopping_term(gauge.u, psi)
        best = min(best, time.perf_counter() - t0)
    sites_per_s = lattice.volume / best
    return sites_per_s, sites_per_s * WILSON_DSLASH_FLOPS_PER_SITE


def calibrate_python_node(
    lattice: Lattice4D | None = None,
    repeats: int = 3,
) -> MachineSpec:
    """A single-"node" spec whose sustained rate is this host's measured
    numpy Dslash throughput.

    Network parameters are placeholders (one Python process has no
    network); only the compute side of the model is calibrated — exactly
    what E9 checks.
    """
    lattice = lattice or Lattice4D((8, 8, 8, 8))
    _, flops = measured_dslash_rate(lattice, repeats=repeats)
    return MachineSpec(
        name="python-node (calibrated)",
        peak_flops=flops,
        sustained_fraction=1.0,
        # Set memory bandwidth high enough that the roofline reproduces the
        # measured rate: the calibration folds all bottlenecks into flops.
        mem_bandwidth=flops * 10.0,
        link_bandwidth=1e9,
        n_links=1,
        latency=1e-6,
        per_hop_latency=0.0,
        torus_dims=0,
        cores_per_node=1,
        overlap_fraction=0.0,
    )


def measured_memcpy_bandwidth(nbytes: int = 1 << 25, repeats: int = 3) -> float:
    """Bytes/s of a large in-memory copy — the shm backend's "link"."""
    import numpy as np

    src = np.empty(nbytes, dtype=np.uint8)
    dst = np.empty_like(src)
    np.copyto(dst, src)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.copyto(dst, src)
        best = min(best, time.perf_counter() - t0)
    return nbytes / best


def measured_tcp_link(
    nbytes: int = 1 << 24, repeats: int = 3, host: str = "127.0.0.1"
) -> tuple[float, float]:
    """``(bytes/s, seconds)`` of the tcp backend's link on this host.

    Bandwidth: one large CRC-framed transfer (frame + tiny ack) through a
    real loopback TCP connection — the same framing the backend uses, so
    header and checksum costs are charged.  Latency: best-of half
    round-trip of an empty frame, the per-message cost the machine model's
    ``latency`` parameter represents.
    """
    import socket
    import threading

    from repro.comm.frame import recv_frame, send_frame

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind((host, 0))
    listener.listen(1)

    def echo_acks() -> None:
        peer, _ = listener.accept()
        peer.settimeout(30.0)
        peer.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                recv_frame(peer)
                send_frame(peer, b"")
        except Exception:
            pass
        finally:
            peer.close()

    server = threading.Thread(target=echo_acks, daemon=True)
    server.start()
    sock = socket.create_connection(listener.getsockname()[:2], timeout=30.0)
    sock.settimeout(30.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        payload = b"\0" * nbytes
        send_frame(sock, payload)  # warm-up (buffers, congestion window)
        recv_frame(sock)
        best_bw = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            send_frame(sock, payload)
            recv_frame(sock)
            best_bw = min(best_bw, time.perf_counter() - t0)
        best_rtt = float("inf")
        for _ in range(max(8, repeats)):
            t0 = time.perf_counter()
            send_frame(sock, b"")
            recv_frame(sock)
            best_rtt = min(best_rtt, time.perf_counter() - t0)
    finally:
        sock.close()
        listener.close()
    return nbytes / best_bw, best_rtt / 2.0


def host_comm_spec(
    comm_name: str = "shm",
    lattice: Lattice4D | None = None,
    repeats: int = 3,
) -> MachineSpec:
    """A spec for *this* host running one rank process per "node" of the
    named communicator backend.

    Compute side: the measured numpy Dslash rate (as E9's calibration),
    identical across backends.  Network side, per backend:

    ``shm``
        a halo "message" is a memcpy through shared memory — link
        bandwidth is the measured copy bandwidth; latency is one
        command/ack pipe round-trip (~tens of us);
    ``tcp``
        a halo message is a CRC-framed loopback socket transfer — link
        bandwidth and per-message latency are both measured through a
        real socket (:func:`measured_tcp_link`);
    anything else (``virtual``, ``mpi`` without a fabric to measure)
        falls back to the shm parameters, the host's only other real
        transport.

    The E22 driver feeds the resulting specs to the scaling model and
    tabulates modelled vs measured efficiency per backend.
    """
    base = calibrate_python_node(lattice, repeats=repeats)
    if comm_name == "tcp":
        link_bw, latency = measured_tcp_link(repeats=repeats)
    else:
        link_bw, latency = measured_memcpy_bandwidth(repeats=repeats), 50e-6
    return replace(
        base,
        name=f"{comm_name}-host (calibrated)",
        link_bandwidth=link_bw,
        n_links=1,
        latency=latency,
        per_hop_latency=0.0,
        torus_dims=0,
        cores_per_node=os.cpu_count() or 1,
    )

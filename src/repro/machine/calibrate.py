"""Calibration: build a machine spec for *this* host's Python kernels.

E9 validates the time model against reality at the only scale we can
measure — one Python process.  We time the actual numpy Dslash, convert to
a sustained flop rate, and construct a single-node spec whose model
predictions must then match further measurements within a stated tolerance.
"""

from __future__ import annotations

import time

from repro.dirac.hopping import hopping_term
from repro.fields import GaugeField, random_fermion
from repro.lattice import Lattice4D
from repro.machine.spec import MachineSpec
from repro.util.flops import WILSON_DSLASH_FLOPS_PER_SITE

__all__ = ["measured_dslash_rate", "calibrate_python_node"]


def measured_dslash_rate(
    lattice: Lattice4D,
    repeats: int = 3,
    rng: int = 12345,
    dtype=None,
) -> tuple[float, float]:
    """(sites/s, nominal flop/s) of the numpy Dslash on ``lattice``.

    Best-of-``repeats`` timing to suppress scheduler noise, as the
    optimisation guide recommends for sub-second kernels.
    """
    import numpy as np

    dtype = dtype or np.complex128
    gauge = GaugeField.hot(lattice, rng=rng, dtype=dtype)
    psi = random_fermion(lattice, rng=rng + 1, dtype=dtype)
    hopping_term(gauge.u, psi)  # warm-up (allocator, caches)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        hopping_term(gauge.u, psi)
        best = min(best, time.perf_counter() - t0)
    sites_per_s = lattice.volume / best
    return sites_per_s, sites_per_s * WILSON_DSLASH_FLOPS_PER_SITE


def calibrate_python_node(
    lattice: Lattice4D | None = None,
    repeats: int = 3,
) -> MachineSpec:
    """A single-"node" spec whose sustained rate is this host's measured
    numpy Dslash throughput.

    Network parameters are placeholders (one Python process has no
    network); only the compute side of the model is calibrated — exactly
    what E9 checks.
    """
    lattice = lattice or Lattice4D((8, 8, 8, 8))
    _, flops = measured_dslash_rate(lattice, repeats=repeats)
    return MachineSpec(
        name="python-node (calibrated)",
        peak_flops=flops,
        sustained_fraction=1.0,
        # Set memory bandwidth high enough that the roofline reproduces the
        # measured rate: the calibration folds all bottlenecks into flops.
        mem_bandwidth=flops * 10.0,
        link_bandwidth=1e9,
        n_links=1,
        latency=1e-6,
        per_hop_latency=0.0,
        torus_dims=0,
        cores_per_node=1,
        overlap_fraction=0.0,
    )

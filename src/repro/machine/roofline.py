"""Roofline analysis of the Wilson Dslash.

The stencil's arithmetic intensity is low (about 1 flop/byte in fp64 with no
cache reuse), so on every machine of the paper's era it is **memory-
bandwidth bound** on-node and **network bound** at small local volumes —
the two regimes whose crossover the scaling study maps.
"""

from __future__ import annotations

from repro.util.flops import WILSON_DSLASH_FLOPS_PER_SITE
from repro.machine.spec import MachineSpec

__all__ = [
    "dslash_bytes_per_site",
    "dslash_arithmetic_intensity",
    "attainable_flops",
    "roofline_report",
]


def dslash_bytes_per_site(precision_bytes: int = 8, gauge_reuse: float = 1.0) -> float:
    """Memory traffic of one Dslash output site.

    Per site: read 8 gauge links (9 complex each), read 8 neighbour spinors
    (12 complex each), write 1 spinor (12 complex).  ``gauge_reuse`` > 1
    models cache reuse of links between the two sites each link touches.

    ``precision_bytes`` is per real number (8 = fp64, 4 = fp32).
    """
    if precision_bytes not in (4, 8):
        raise ValueError(f"precision_bytes must be 4 or 8, got {precision_bytes}")
    complex_bytes = 2 * precision_bytes
    gauge = 8 * 9 * complex_bytes / gauge_reuse
    spinor_in = 8 * 12 * complex_bytes
    spinor_out = 12 * complex_bytes
    return gauge + spinor_in + spinor_out


def dslash_arithmetic_intensity(precision_bytes: int = 8, gauge_reuse: float = 1.0) -> float:
    """Flops per byte of the Wilson Dslash."""
    return WILSON_DSLASH_FLOPS_PER_SITE / dslash_bytes_per_site(precision_bytes, gauge_reuse)


def attainable_flops(spec: MachineSpec, precision_bytes: int = 8, gauge_reuse: float = 1.0) -> float:
    """Roofline-attainable Dslash flop rate on one node.

    ``min(sustained peak, AI * memory bandwidth)`` — for the Wilson stencil
    the bandwidth term always wins on realistic machines.
    """
    ai = dslash_arithmetic_intensity(precision_bytes, gauge_reuse)
    peak = spec.sustained_flops * (8.0 / precision_bytes if precision_bytes == 4 else 1.0)
    return min(peak, ai * spec.mem_bandwidth)


def roofline_report(spec: MachineSpec) -> dict[str, float]:
    """The numbers quoted in the machine-description table."""
    return {
        "ai_fp64": dslash_arithmetic_intensity(8),
        "ai_fp32": dslash_arithmetic_intensity(4),
        "attainable_fp64": attainable_flops(spec, 8),
        "attainable_fp32": attainable_flops(spec, 4),
        "peak": spec.peak_flops,
        "mem_bandwidth": spec.mem_bandwidth,
        "fp32_speedup": attainable_flops(spec, 4) / attainable_flops(spec, 8),
    }

"""Machine models and the scaling simulator.

The paper's petascale numbers come from real BlueGene/Q racks; we cannot run
those, so this package provides the documented substitution: a parameterised
analytic machine model (node flops, memory bandwidth, torus links, latency)
driven by the *actual* message sizes and flop counts recorded by the virtual
MPI layer.  Weak/strong scaling curves, communication fractions and
crossover points are produced by replaying that data against a spec —
absolute Python timings are reported separately and never conflated with
modelled hardware numbers.
"""

from repro.machine.spec import MachineSpec, BLUEGENE_Q, GENERIC_CLUSTER
from repro.machine.roofline import (
    dslash_arithmetic_intensity,
    dslash_bytes_per_site,
    attainable_flops,
    roofline_report,
)
from repro.machine.model import DslashModel, SolverIterationModel
from repro.machine.scaling import (
    balanced_rank_grid,
    weak_scaling,
    strong_scaling,
    ScalingPoint,
    scaling_study,
)
from repro.machine.calibrate import calibrate_python_node, measured_dslash_rate

__all__ = [
    "MachineSpec",
    "BLUEGENE_Q",
    "GENERIC_CLUSTER",
    "dslash_arithmetic_intensity",
    "dslash_bytes_per_site",
    "attainable_flops",
    "roofline_report",
    "DslashModel",
    "SolverIterationModel",
    "balanced_rank_grid",
    "weak_scaling",
    "strong_scaling",
    "ScalingPoint",
    "scaling_study",
    "calibrate_python_node",
    "measured_dslash_rate",
]

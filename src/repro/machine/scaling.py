"""Weak- and strong-scaling studies on the modelled machine.

These functions regenerate the paper's headline figures: aggregate
sustained performance versus node count at fixed local volume (weak
scaling), and time-to-solution versus node count at fixed global lattice
(strong scaling), including the communication-bound collapse at small local
volumes.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.comm import RankGrid, TorusTopology
from repro.machine.model import DslashModel, SolverIterationModel
from repro.machine.spec import MachineSpec

__all__ = [
    "balanced_rank_grid",
    "weak_scaling",
    "strong_scaling",
    "ScalingPoint",
    "scaling_study",
]


def _prime_factors(n: int) -> list[int]:
    out: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


def balanced_rank_grid(
    global_shape: tuple[int, int, int, int], nranks: int
) -> RankGrid:
    """Factor ``nranks`` over the 4 directions, keeping local blocks fat.

    Greedy: assign each prime factor to the axis whose current local extent
    is largest among those still divisible — the heuristic production job
    scripts use.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be positive, got {nranks}")
    dims = [1, 1, 1, 1]
    local = list(global_shape)
    for p in _prime_factors(nranks):
        candidates = [mu for mu in range(4) if local[mu] % p == 0]
        if not candidates:
            raise ValueError(
                f"cannot decompose lattice {global_shape} over {nranks} ranks: "
                f"prime factor {p} does not divide any remaining local extent {local}"
            )
        mu = max(candidates, key=lambda m: local[m])
        dims[mu] *= p
        local[mu] //= p
    return RankGrid(tuple(dims))


def _torus_for(nnodes: int, torus_dims: int) -> TorusTopology:
    """A near-cubic torus of ``nnodes`` nodes in ``torus_dims`` dimensions."""
    if torus_dims <= 0 or nnodes == 1:
        return TorusTopology((max(nnodes, 1),))
    dims = [1] * torus_dims
    for p in _prime_factors(nnodes):
        mu = dims.index(min(dims))
        dims[mu] *= p
    return TorusTopology(tuple(dims))


@dataclass(frozen=True)
class ScalingPoint:
    """One row of a scaling table."""

    nodes: int
    local_shape: tuple[int, int, int, int]
    time_dslash: float
    time_cg_iter: float
    node_flops: float
    aggregate_flops: float
    efficiency: float
    comm_fraction: float

    def row(self) -> list:
        return [
            self.nodes,
            "x".join(map(str, self.local_shape)),
            self.time_dslash,
            self.time_cg_iter,
            self.node_flops / 1e9,
            self.aggregate_flops / 1e12,
            self.efficiency,
            self.comm_fraction,
        ]

    @staticmethod
    def columns() -> list[str]:
        return [
            "nodes",
            "local",
            "t_dslash [s]",
            "t_cg_iter [s]",
            "GF/s/node",
            "agg TF/s",
            "efficiency",
            "comm frac",
        ]


def _point(
    spec: MachineSpec,
    nodes: int,
    local_shape: tuple[int, int, int, int],
    decomposed_axes: tuple[int, ...],
    precision_bytes: int,
    baseline_node_flops: float | None,
) -> ScalingPoint:
    torus = _torus_for(nodes, spec.torus_dims)
    hops = 1 if nodes > 1 else 0
    model = DslashModel(
        spec=spec,
        local_shape=local_shape,
        decomposed_axes=decomposed_axes if nodes > 1 else (),
        precision_bytes=precision_bytes,
        hops=max(hops, 1),
    )
    it = SolverIterationModel(model, nodes)
    node_flops = model.flops_rate()
    base = baseline_node_flops if baseline_node_flops is not None else node_flops
    return ScalingPoint(
        nodes=nodes,
        local_shape=local_shape,
        time_dslash=model.time(),
        time_cg_iter=it.time(),
        node_flops=node_flops,
        aggregate_flops=node_flops * nodes,
        efficiency=node_flops / base,
        comm_fraction=model.comm_fraction(),
    )


def weak_scaling(
    spec: MachineSpec,
    local_shape: tuple[int, int, int, int],
    node_counts: list[int],
    precision_bytes: int = 8,
) -> list[ScalingPoint]:
    """Fixed local volume per node; the global lattice grows with nodes.

    Ideal weak scaling is flat GF/s/node; deviations come only from the
    surface exchange and the growing allreduce depth.
    """
    points = []
    baseline = None
    for n in sorted(node_counts):
        p = _point(spec, n, tuple(local_shape), (0, 1, 2, 3), precision_bytes, baseline)
        if baseline is None:
            baseline = p.node_flops
            p = _point(spec, n, tuple(local_shape), (0, 1, 2, 3), precision_bytes, baseline)
        points.append(p)
    return points


def strong_scaling(
    spec: MachineSpec,
    global_shape: tuple[int, int, int, int],
    node_counts: list[int],
    precision_bytes: int = 8,
) -> list[ScalingPoint]:
    """Fixed global lattice carved into ever-smaller local blocks.

    Efficiency here is speedup/nodes relative to the smallest node count;
    the communication fraction rises as the surface-to-volume ratio grows
    until the curve flattens — the crossover the paper maps.
    """
    points = []
    base_time = None
    base_nodes = None
    for n in sorted(node_counts):
        grid = balanced_rank_grid(global_shape, n)
        local = tuple(g // d for g, d in zip(global_shape, grid.dims))
        decomposed = grid.decomposed_axes()
        p = _point(spec, n, local, decomposed, precision_bytes, None)
        if base_time is None:
            base_time, base_nodes = p.time_dslash, n
        speedup = base_time / p.time_dslash
        p = ScalingPoint(
            nodes=p.nodes,
            local_shape=p.local_shape,
            time_dslash=p.time_dslash,
            time_cg_iter=p.time_cg_iter,
            node_flops=p.node_flops,
            aggregate_flops=p.aggregate_flops,
            efficiency=speedup / (n / base_nodes),
            comm_fraction=p.comm_fraction,
        )
        points.append(p)
    return points


def scaling_study(
    spec: MachineSpec,
    local_shape: tuple[int, int, int, int] = (8, 8, 8, 8),
    global_shape: tuple[int, int, int, int] = (96, 48, 48, 48),
    max_nodes_log2: int = 14,
    precision_bytes: int = 8,
) -> dict[str, list[ScalingPoint]]:
    """The full study both benchmark E2/E3 and the example script run."""
    counts = [2**k for k in range(0, max_nodes_log2 + 1, 2)]
    strong_counts = [n for n in counts if _decomposable(global_shape, n)]
    return {
        "weak": weak_scaling(spec, local_shape, counts, precision_bytes),
        "strong": strong_scaling(spec, global_shape, strong_counts, precision_bytes),
    }


def _decomposable(global_shape: tuple[int, int, int, int], nranks: int) -> bool:
    try:
        balanced_rank_grid(global_shape, nranks)
        return True
    except ValueError:
        return False

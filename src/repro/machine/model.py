"""Time models for the Dslash and a solver iteration at scale.

Given a :class:`MachineSpec`, a local (per-node) lattice block and a
precision, :class:`DslashModel` predicts one Dslash application:

* compute: roofline-attainable rate over the local flops;
* communication: per decomposed direction, two face messages of
  spin-projected half-spinors (6 complex per site — production codes
  exchange projected faces, halving the payload), spread over the torus
  links that can fire concurrently, plus per-message latency;
* overlap: ``overlap_fraction`` of communication hides behind interior
  compute, the rest is exposed.

:class:`SolverIterationModel` adds the linear algebra (bandwidth-bound
axpys) and the latency-bound allreduce of the two CG inner products — the
term that eventually kills strong scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.machine.roofline import attainable_flops
from repro.machine.spec import MachineSpec
from repro.util.flops import WILSON_DSLASH_FLOPS_PER_SITE, cg_linalg_flops_per_iter

__all__ = ["DslashModel", "SolverIterationModel"]

#: Complex numbers per site of an exchanged (spin-projected) face.
HALF_SPINOR_COMPLEX = 6


@dataclass(frozen=True)
class DslashModel:
    """Predicts one Wilson Dslash on one node of a machine.

    ``local_shape`` is the per-node block; ``decomposed_axes`` lists the
    directions with off-node neighbours; ``hops`` is the worst-case torus
    distance of those neighbours (from :class:`~repro.comm.TorusTopology`).
    """

    spec: MachineSpec
    local_shape: tuple[int, int, int, int]
    decomposed_axes: tuple[int, ...] = (0, 1, 2, 3)
    precision_bytes: int = 8
    hops: int = 1

    @property
    def local_volume(self) -> int:
        return int(math.prod(self.local_shape))

    # -- pieces ---------------------------------------------------------------

    def compute_time(self) -> float:
        flops = WILSON_DSLASH_FLOPS_PER_SITE * self.local_volume
        return flops / attainable_flops(self.spec, self.precision_bytes)

    def face_bytes(self, mu: int) -> int:
        """One face message: half spinors over the face area."""
        area = self.local_volume // self.local_shape[mu]
        return area * HALF_SPINOR_COMPLEX * 2 * self.precision_bytes

    def message_count(self) -> int:
        return 2 * len(self.decomposed_axes)

    def comm_volume(self) -> int:
        return sum(self.face_bytes(mu) for mu in self.decomposed_axes) * 2

    def comm_time(self) -> float:
        """Faces stream concurrently over the available links."""
        if not self.decomposed_axes:
            return 0.0
        total_bytes = self.comm_volume()
        concurrency = min(self.spec.n_links, self.message_count())
        bw_time = total_bytes / (self.spec.link_bandwidth * concurrency)
        lat = self.spec.latency + self.spec.per_hop_latency * max(0, self.hops - 1)
        # Latencies of concurrent messages overlap; charge one per wave.
        waves = math.ceil(self.message_count() / concurrency)
        return bw_time + lat * waves

    def time(self) -> float:
        """Total wall time per Dslash including overlap."""
        tc = self.compute_time()
        tm = self.comm_time()
        hidden = min(tm * self.spec.overlap_fraction, tc)
        return tc + tm - hidden

    def comm_fraction(self) -> float:
        """Exposed communication share of the total (0 when fully hidden)."""
        t = self.time()
        if t == 0.0:
            return 0.0
        return 1.0 - self.compute_time() / t

    def flops_rate(self) -> float:
        """Delivered flop/s per node for this configuration."""
        return WILSON_DSLASH_FLOPS_PER_SITE * self.local_volume / self.time()


@dataclass(frozen=True)
class SolverIterationModel:
    """One CG iteration on the even-odd normal operator at scale.

    Two Dslash-pair applications (normal op), bandwidth-bound vector
    updates, and one latency-bound global reduction per inner product.
    """

    dslash: DslashModel
    nnodes: int

    def dslash_time(self) -> float:
        # Normal operator: M and M^dag, each one Dslash sweep.
        return 2.0 * self.dslash.time()

    def linalg_time(self) -> float:
        reals = self.dslash.local_volume * 24  # one spinor per site
        flops = cg_linalg_flops_per_iter(reals)
        # axpy/dot are pure-bandwidth: 3 streams per flop-pair; approximate
        # with bytes = 1.5 * reals * precision * (flops / (2*reals)).
        bytes_moved = 5 * reals * self.dslash.precision_bytes
        return max(
            flops / self.dslash.spec.sustained_flops,
            bytes_moved / self.dslash.spec.mem_bandwidth,
        )

    def allreduce_time(self) -> float:
        """Two inner products per iteration; tree reduction of one scalar."""
        if self.nnodes <= 1:
            return 0.0
        depth = math.ceil(math.log2(self.nnodes))
        per_reduce = depth * (self.dslash.spec.latency + self.dslash.spec.per_hop_latency)
        return 2.0 * per_reduce

    def time(self) -> float:
        return self.dslash_time() + self.linalg_time() + self.allreduce_time()

    def breakdown(self) -> dict[str, float]:
        return {
            "dslash": self.dslash_time(),
            "linalg": self.linalg_time(),
            "allreduce": self.allreduce_time(),
        }

"""Machine specifications.

``BLUEGENE_Q`` follows the published per-node characteristics of the
machine the paper-era campaigns ran on: 16 compute cores at 1.6 GHz with
4-wide fused multiply-add QPX (204.8 GF/s peak fp64), ~28 GB/s sustained
memory bandwidth (STREAM), and a 5-D torus with 10 bidirectional links of
2 GB/s each and ~1 microsecond nearest-neighbour latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "BLUEGENE_Q", "GENERIC_CLUSTER"]


@dataclass(frozen=True)
class MachineSpec:
    """Per-node hardware parameters of a distributed machine.

    All rates are bytes/s or flop/s; times in seconds.
    """

    name: str
    #: Peak floating-point rate per node (fp64).
    peak_flops: float
    #: Fraction of peak a tuned Dslash sustains when compute-bound.
    sustained_fraction: float
    #: Sustained memory bandwidth per node (STREAM-like).
    mem_bandwidth: float
    #: Bandwidth of one network link, one direction.
    link_bandwidth: float
    #: Number of links a node can drive concurrently.
    n_links: int
    #: Software + hardware latency per message.
    latency: float
    #: Additional latency per torus hop beyond the first.
    per_hop_latency: float
    #: Torus dimensionality of the interconnect (5 for BG/Q).
    torus_dims: int
    #: Cores (ranks) per node.
    cores_per_node: int
    #: Fraction of communication hideable behind interior compute (0..1).
    overlap_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.sustained_fraction <= 1.0:
            raise ValueError(f"sustained_fraction must be in (0,1], got {self.sustained_fraction}")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError(f"overlap_fraction must be in [0,1], got {self.overlap_fraction}")
        for attr in ("peak_flops", "mem_bandwidth", "link_bandwidth", "latency"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    @property
    def sustained_flops(self) -> float:
        return self.peak_flops * self.sustained_fraction

    def with_overlap(self, overlap_fraction: float) -> "MachineSpec":
        """Clone with a different comm/compute overlap (ablation E10)."""
        return replace(self, overlap_fraction=overlap_fraction)

    def with_precision_scaling(self, precision_bytes: int) -> float:
        """Effective peak scaling for reduced precision: fp32 doubles SIMD
        width on BG/Q-era hardware."""
        return self.peak_flops * (8.0 / precision_bytes)


#: IBM BlueGene/Q node + 5-D torus (paper-era hardware).
BLUEGENE_Q = MachineSpec(
    name="BlueGene/Q",
    peak_flops=204.8e9,
    sustained_fraction=0.30,  # tuned QPX Dslash sustains tens of % of peak
    mem_bandwidth=28e9,
    link_bandwidth=2e9,
    n_links=10,
    latency=1.0e-6,
    per_hop_latency=0.05e-6,
    torus_dims=5,
    cores_per_node=16,
    overlap_fraction=0.8,  # BG/Q messaging unit overlaps well
)

#: A contemporary commodity cluster (dual-socket node + fat-tree IB).
GENERIC_CLUSTER = MachineSpec(
    name="generic-cluster",
    peak_flops=500e9,
    sustained_fraction=0.10,
    mem_bandwidth=100e9,
    link_bandwidth=12.5e9,
    n_links=1,
    latency=1.5e-6,
    per_hop_latency=0.1e-6,
    torus_dims=0,  # switched fabric: hop count ~ constant
    cores_per_node=32,
    overlap_fraction=0.3,
)

"""The Hybrid Monte Carlo driver."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fields import GaugeField
from repro.hmc.action import GaugeAction, kinetic_energy, sample_momenta
from repro.hmc.integrator import INTEGRATORS
from repro.telemetry import registry as _tm_registry
from repro.telemetry.spans import span
from repro.telemetry.state import STATE
from repro.util.rng import ensure_rng

__all__ = ["HMC", "TrajectoryResult"]


@dataclass(frozen=True)
class TrajectoryResult:
    """Outcome of one HMC trajectory."""

    accepted: bool
    delta_h: float
    action_value: float
    plaquette: float


class _CompositeAction(GaugeAction):
    """Sum of several action terms sharing one set of links."""

    def __init__(self, terms) -> None:
        self.terms = list(terms)

    def action(self, gauge: GaugeField) -> float:
        return sum(t.action(gauge) for t in self.terms)

    def force(self, gauge: GaugeField) -> np.ndarray:
        f = self.terms[0].force(gauge)
        for t in self.terms[1:]:
            f = f + t.force(gauge)
        return f


@dataclass
class HMC:
    """Exact HMC for one or more action terms.

    Parameters
    ----------
    action:
        A single :class:`GaugeAction` or a list of terms (e.g. gauge +
        pseudofermion).  Terms with a ``refresh(gauge, rng)`` method get it
        called at the start of every trajectory (pseudofermion heatbath).
    step_size / n_steps:
        Trajectory length is ``step_size * n_steps``; length ~1 decorrelates
        well.
    integrator:
        ``"leapfrog"`` or ``"omelyan"``.
    """

    action: GaugeAction | list[GaugeAction]
    step_size: float = 0.1
    n_steps: int = 10
    integrator: str = "leapfrog"
    rng: np.random.Generator | int | None = None

    n_accepted: int = field(default=0, init=False)
    n_trajectories: int = field(default=0, init=False)
    dh_history: list[float] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.integrator not in INTEGRATORS:
            raise ValueError(
                f"unknown integrator {self.integrator!r}; choose from {sorted(INTEGRATORS)}"
            )
        if isinstance(self.action, (list, tuple)):
            self._terms = list(self.action)
            self._action: GaugeAction = _CompositeAction(self._terms)
        else:
            self._terms = [self.action]
            self._action = self.action
        self.rng = ensure_rng(self.rng)

    def state_dict(self) -> dict:
        """Checkpointable driver counters (the RNG is serialised separately).

        Together with the gauge links and the RNG state this is everything a
        resumed stream needs to continue bit-for-bit (see ``repro.campaign``).
        """
        return {
            "n_accepted": int(self.n_accepted),
            "n_trajectories": int(self.n_trajectories),
            "dh_history": [float(x) for x in self.dh_history],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore counters saved by :meth:`state_dict`."""
        self.n_accepted = int(state["n_accepted"])
        self.n_trajectories = int(state["n_trajectories"])
        self.dh_history = [float(x) for x in state["dh_history"]]

    @property
    def acceptance_rate(self) -> float:
        if self.n_trajectories == 0:
            return 0.0
        return self.n_accepted / self.n_trajectories

    def trajectory(self, gauge: GaugeField) -> TrajectoryResult:
        """Evolve one trajectory in place (rejections restore the input)."""
        from repro.loops import average_plaquette

        with span("hmc_trajectory", cat="hmc"):
            for t in self._terms:
                if hasattr(t, "refresh"):
                    t.refresh(gauge, self.rng)

            pi = sample_momenta(gauge, rng=self.rng)
            h_old = kinetic_energy(pi) + self._action.action(gauge)

            proposal = gauge.copy()
            with span("integrate", cat="hmc"):
                INTEGRATORS[self.integrator](
                    proposal, pi, self._action, self.step_size, self.n_steps
                )
            h_new = kinetic_energy(pi) + self._action.action(proposal)
            dh = h_new - h_old

            accepted = dh <= 0.0 or self.rng.random() < np.exp(-dh)
            if accepted:
                gauge.u = proposal.u
                self.n_accepted += 1
            self.n_trajectories += 1
            self.dh_history.append(float(dh))
            if STATE.counting:
                reg = _tm_registry.get_registry()
                reg.add("hmc/trajectories", 1)
                if accepted:
                    reg.add("hmc/accepted", 1)
                reg.observe("hmc/delta_h", abs(float(dh)))
            return TrajectoryResult(
                accepted=bool(accepted),
                delta_h=float(dh),
                action_value=float(self._action.action(gauge)),
                plaquette=float(average_plaquette(gauge.u)),
            )

    def run(self, gauge: GaugeField, n_trajectories: int) -> list[TrajectoryResult]:
        """Run a stream of trajectories, reunitarising periodically."""
        results = []
        for i in range(n_trajectories):
            results.append(self.trajectory(gauge))
            if (i + 1) % 25 == 0:
                gauge.reunitarize()
        return results

"""Symplectic, reversible molecular-dynamics integrators.

Both update schemes are volume-preserving and time-reversible, so the
Metropolis step is exact.  Leapfrog has O(eps^2) Hamiltonian error per
trajectory; the Omelyan 2nd-order minimum-norm scheme has the same order
with a ~10x smaller coefficient at 1.5x the force evaluations — the E10
ablation measures exactly that trade.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import su3
from repro.fields import GaugeField
from repro.hmc.action import GaugeAction

__all__ = ["leapfrog", "omelyan", "INTEGRATORS"]

#: Omelyan-Mryglod-Folk 2nd-order minimum-norm coefficient.
OMELYAN_LAMBDA = 0.1931833275037836


def _drift(gauge: GaugeField, pi: np.ndarray, eps: float) -> None:
    """``U <- exp(eps pi) U`` in place, exactly on the group manifold."""
    gauge.u = su3.mul(su3.expm_su3(eps * pi), gauge.u)


def _kick(gauge: GaugeField, pi: np.ndarray, action: GaugeAction, eps: float) -> None:
    """``pi <- pi - eps F(U)`` in place."""
    pi -= eps * action.force(gauge)


def leapfrog(
    gauge: GaugeField,
    pi: np.ndarray,
    action: GaugeAction,
    eps: float,
    n_steps: int,
) -> None:
    """Standard kick-drift-kick leapfrog, in place."""
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    _kick(gauge, pi, action, 0.5 * eps)
    for step in range(n_steps):
        _drift(gauge, pi, eps)
        _kick(gauge, pi, action, eps if step < n_steps - 1 else 0.5 * eps)


def omelyan(
    gauge: GaugeField,
    pi: np.ndarray,
    action: GaugeAction,
    eps: float,
    n_steps: int,
) -> None:
    """Omelyan 2MN: kick(lam) drift(1/2) kick(1-2lam) drift(1/2) kick(lam)."""
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    lam = OMELYAN_LAMBDA
    _kick(gauge, pi, action, lam * eps)
    for step in range(n_steps):
        _drift(gauge, pi, 0.5 * eps)
        _kick(gauge, pi, action, (1.0 - 2.0 * lam) * eps)
        _drift(gauge, pi, 0.5 * eps)
        # Successive trajectories fuse the trailing and leading lam-kicks.
        _kick(gauge, pi, action, (2.0 * lam if step < n_steps - 1 else lam) * eps)


INTEGRATORS: dict[str, Callable] = {"leapfrog": leapfrog, "omelyan": omelyan}

"""Two-flavour Wilson pseudofermion action.

``det(M^dag M)`` (two degenerate flavours) is represented by a Gaussian
integral over a pseudofermion field::

    S_pf = phi^dag (M^dag M)^{-1} phi

Heatbath at the start of a trajectory: draw ``eta ~ N(0,1)`` and set
``phi = M^dag eta`` (then ``S_pf = |eta|^2`` exactly).  The force follows
from differentiating M with respect to a link; with ``X = (M^dag M)^{-1}
phi`` and ``Y = M X`` the contribution to ``dpi/dt`` is
``(1/2) Ta[C1 - C2]`` where C1/C2 are the colour outer products built
below — a sign and index structure that is *verified against the numerical
gradient of S_pf* in the tests.
"""

from __future__ import annotations

import numpy as np

from repro import su3
from repro.dirac.hopping import DEFAULT_FERMION_PHASES
from repro.dirac.wilson import WilsonDirac
from repro.fields import GaugeField, inner, random_fermion
from repro.gammas import spin_projector_matrix
from repro.hmc.action import GaugeAction
from repro.lattice import shift_with_phase
from repro.solvers.cg import cg
from repro.util.rng import ensure_rng

__all__ = ["TwoFlavorWilsonAction", "wilson_bilinear_force"]


def wilson_bilinear_force(
    gauge: GaugeField,
    x: np.ndarray,
    y: np.ndarray,
    phases: tuple[complex, complex, complex, complex] = DEFAULT_FERMION_PHASES,
) -> np.ndarray:
    """``dpi/dt`` contribution of ``- [ Y^dag dM X + X^dag dM^dag Y ]``.

    This is the universal building block of Wilson fermion forces: for any
    action term whose link variation enters through
    ``delta S = -(Y^dag deltaM X + h.c.)`` the momentum derivative is
    ``(1/2) Ta(C1 - C2)`` with the colour outer products below.  The
    two-flavour action uses it once with ``X = (M^dag M)^{-1} phi``,
    ``Y = M X``; RHMC sums it over rational-approximation poles.
    """
    u = gauge.u
    out = np.empty_like(u)
    for mu in range(4):
        p_minus = spin_projector_matrix(mu, -1)  # (1 - gamma_mu)
        p_plus = spin_projector_matrix(mu, +1)
        x_fwd = shift_with_phase(x, mu, +1, phases[mu])
        w1 = np.einsum("st,...tc->...sc", p_minus, y, optimize=True)
        outer1 = np.einsum("...tc,...ta->...ca", x_fwd, np.conj(w1), optimize=True)
        c1 = su3.mul(u[mu], outer1)

        w2 = np.einsum("st,...tc->...sc", p_plus, y, optimize=True)
        w2_fwd = shift_with_phase(w2, mu, +1, phases[mu])
        outer2 = np.einsum("...tc,...ta->...ca", x, np.conj(w2_fwd), optimize=True)
        c2 = su3.mul_dag(outer2, u[mu])

        out[mu] = 0.5 * su3.project_algebra(c1 - c2)
    return out


class TwoFlavorWilsonAction(GaugeAction):
    """``S_pf = phi^dag (M^dag M)^{-1} phi`` for the Wilson operator.

    Parameters
    ----------
    mass:
        Sea-quark mass of the degenerate doublet.
    solver_tol:
        CG tolerance of the force/action solves; force accuracy feeds
        directly into HMC energy conservation.
    """

    def __init__(
        self,
        mass: float,
        phases: tuple[complex, complex, complex, complex] = DEFAULT_FERMION_PHASES,
        solver_tol: float = 1e-10,
        max_iter: int = 10000,
    ) -> None:
        self.mass = float(mass)
        self.phases = tuple(phases)
        self.solver_tol = float(solver_tol)
        self.max_iter = int(max_iter)
        self.phi: np.ndarray | None = None

    # -- pseudofermion heatbath -------------------------------------------------

    def refresh(self, gauge: GaugeField, rng=None) -> None:
        """Draw ``phi = M^dag eta`` with Gaussian eta (called by HMC)."""
        rng = ensure_rng(rng)
        eta = random_fermion(gauge.lattice, rng=rng)
        m = WilsonDirac(gauge, self.mass, self.phases)
        self.phi = m.apply_dagger(eta)

    def set_phi(self, phi: np.ndarray) -> None:
        """Pin the pseudofermion field (tests/numerical-gradient checks)."""
        self.phi = phi.copy()

    def _solve_x(self, gauge: GaugeField) -> tuple[np.ndarray, WilsonDirac]:
        if self.phi is None:
            raise RuntimeError("pseudofermion field not initialised; call refresh()")
        m = WilsonDirac(gauge, self.mass, self.phases)
        res = cg(m.normal_op(), self.phi, tol=self.solver_tol, max_iter=self.max_iter,
                 record_history=False)
        if not res.converged:
            raise RuntimeError(f"pseudofermion solve failed: {res.summary()}")
        return res.x, m

    # -- action + force ----------------------------------------------------------

    def action(self, gauge: GaugeField) -> float:
        x, _ = self._solve_x(gauge)
        return float(inner(self.phi, x).real)

    def force(self, gauge: GaugeField) -> np.ndarray:
        x, m = self._solve_x(gauge)
        y = m.apply(x)
        # dpi/dt contribution is wilson_bilinear_force; force = -that.
        return -wilson_bilinear_force(gauge, x, y, self.phases)

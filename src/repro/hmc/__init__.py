"""Gauge-field generation: Hybrid Monte Carlo and heatbath.

The HMC implementation follows the production structure: actions expose
``action(u)`` and ``force(u)`` (with ``pi_dot = -force``), symplectic
integrators evolve ``(U, pi)``, and a Metropolis accept/reject step makes
the algorithm exact.  Forces are validated against numerical derivatives of
the action in the tests — the classic way sign conventions are pinned down.
"""

from repro.hmc.action import GaugeAction, WilsonGaugeAction, kinetic_energy, sample_momenta
from repro.hmc.integrator import leapfrog, omelyan, INTEGRATORS
from repro.hmc.hmc import HMC, TrajectoryResult
from repro.hmc.pseudofermion import TwoFlavorWilsonAction, wilson_bilinear_force
from repro.hmc.rational import RationalApprox, fit_rational_power
from repro.hmc.rhmc import OneFlavorWilsonAction, estimate_spectral_bounds
from repro.hmc.improved import (
    ImprovedGaugeAction,
    rectangle_staple_sum,
    LUSCHER_WEISZ_C1,
    IWASAKI_C1,
    DBW2_C1,
)
from repro.hmc.heatbath import heatbath_sweep, overrelaxation_sweep, su2_heatbath_pauli

__all__ = [
    "wilson_bilinear_force",
    "RationalApprox",
    "fit_rational_power",
    "OneFlavorWilsonAction",
    "estimate_spectral_bounds",
    "ImprovedGaugeAction",
    "rectangle_staple_sum",
    "LUSCHER_WEISZ_C1",
    "IWASAKI_C1",
    "DBW2_C1",
    "GaugeAction",
    "WilsonGaugeAction",
    "kinetic_energy",
    "sample_momenta",
    "leapfrog",
    "omelyan",
    "INTEGRATORS",
    "HMC",
    "TrajectoryResult",
    "TwoFlavorWilsonAction",
    "heatbath_sweep",
    "overrelaxation_sweep",
    "su2_heatbath_pauli",
]

"""Rational HMC: a single Wilson flavour via ``det(M^dag M)^{1/2}``.

The pseudofermion action is ``S = phi^dag (M^dag M)^{-1/2} phi`` with the
inverse square root replaced by a partial-fraction rational approximation;
one multishift CG per force evaluation solves every pole at once.  The
heatbath draw uses a second approximation, of ``x^{+1/4}``:
``phi = (M^dag M)^{1/4} eta`` gives ``S = |eta|^2`` up to the fit error.

Force: with ``X_i = (A + b_i)^{-1} phi`` and ``Y_i = M X_i``::

    dS = - sum_i r_i [ Y_i^dag dM X_i + h.c. ]
    dpi/dt = sum_i r_i * wilson_bilinear_force(X_i, Y_i)

validated against the numerical gradient of S in the tests, exactly like
the gauge and two-flavour forces.
"""

from __future__ import annotations

import numpy as np

from repro.dirac.hopping import DEFAULT_FERMION_PHASES
from repro.dirac.wilson import WilsonDirac
from repro.fields import GaugeField, inner, norm2, random_fermion
from repro.hmc.action import GaugeAction
from repro.hmc.pseudofermion import wilson_bilinear_force
from repro.hmc.rational import RationalApprox, fit_rational_power
from repro.solvers.lanczos import lanczos
from repro.solvers.multishift import multishift_cg
from repro.util.rng import ensure_rng

__all__ = ["OneFlavorWilsonAction", "estimate_spectral_bounds"]


def estimate_spectral_bounds(
    op, field_shape: tuple[int, ...], rng=None, safety: float = 2.0
) -> tuple[float, float]:
    """Conservative (lo, hi) bracketing of a Hermitian PD spectrum.

    Power iteration for the top, a short Lanczos for the bottom, both
    widened by ``safety``.
    """
    rng = ensure_rng(rng)
    v = (rng.normal(size=field_shape) + 1j * rng.normal(size=field_shape)).astype(complex)
    v /= np.sqrt(norm2(v))
    lam_max = 1.0
    for _ in range(20):
        w = op(v)
        lam_max = float(np.sqrt(norm2(w)))
        v = w / lam_max
    pairs = lanczos(op, 1, field_shape, krylov_dim=30, rng=rng)
    lam_min = float(pairs.values[0])
    return lam_min / safety, lam_max * safety


class OneFlavorWilsonAction(GaugeAction):
    """``S = phi^dag (M^dag M)^{-1/2} phi`` — one Wilson flavour by RHMC.

    Parameters
    ----------
    mass:
        Sea-quark mass.
    spectral_bounds:
        (lo, hi) bracketing the spectrum of ``M^dag M`` along the whole
        trajectory.  ``None`` estimates them at the first refresh (and the
        approximation interval is widened by the estimator's safety
        factor, as production RHMC does).
    n_poles:
        Partial-fraction order for both the -1/2 and +1/4 approximations.
    """

    def __init__(
        self,
        mass: float,
        spectral_bounds: tuple[float, float] | None = None,
        n_poles: int = 12,
        phases: tuple[complex, complex, complex, complex] = DEFAULT_FERMION_PHASES,
        solver_tol: float = 1e-10,
        max_iter: int = 10000,
    ) -> None:
        self.mass = float(mass)
        self.phases = tuple(phases)
        self.n_poles = int(n_poles)
        self.solver_tol = float(solver_tol)
        self.max_iter = int(max_iter)
        self.phi: np.ndarray | None = None
        self._bounds = spectral_bounds
        self._inv_sqrt: RationalApprox | None = None
        self._quarter: RationalApprox | None = None
        if spectral_bounds is not None:
            self._build_approximations()

    def _build_approximations(self) -> None:
        lo, hi = self._bounds
        self._inv_sqrt = fit_rational_power(-0.5, lo, hi, n_poles=self.n_poles)
        self._quarter = fit_rational_power(0.25, lo, hi, n_poles=self.n_poles)

    @property
    def rational_error(self) -> float:
        """Worst relative fit error of the two approximations in use."""
        if self._inv_sqrt is None:
            raise RuntimeError("approximations not built yet; call refresh()")
        return max(self._inv_sqrt.max_rel_error, self._quarter.max_rel_error)

    def _operator(self, gauge: GaugeField):
        return WilsonDirac(gauge, self.mass, self.phases)

    # -- heatbath -----------------------------------------------------------

    def refresh(self, gauge: GaugeField, rng=None) -> None:
        rng = ensure_rng(rng)
        m = self._operator(gauge)
        nop = m.normal_op()
        if self._inv_sqrt is None:
            shape = gauge.lattice.shape + (4, 3)
            self._bounds = estimate_spectral_bounds(nop, shape, rng=rng)
            self._build_approximations()
        eta = random_fermion(gauge.lattice, rng=rng)
        phi, _ = self._quarter.apply_operator(
            nop, eta, tol=self.solver_tol, max_iter=self.max_iter
        )
        self.phi = phi

    def set_phi(self, phi: np.ndarray) -> None:
        self.phi = phi.copy()

    # -- action + force -------------------------------------------------------

    def action(self, gauge: GaugeField) -> float:
        if self.phi is None:
            raise RuntimeError("pseudofermion field not initialised; call refresh()")
        nop = self._operator(gauge).normal_op()
        sphi, _ = self._inv_sqrt.apply_operator(
            nop, self.phi, tol=self.solver_tol, max_iter=self.max_iter
        )
        return float(inner(self.phi, sphi).real)

    def force(self, gauge: GaugeField) -> np.ndarray:
        if self.phi is None:
            raise RuntimeError("pseudofermion field not initialised; call refresh()")
        m = self._operator(gauge)
        nop = m.normal_op()
        results = multishift_cg(
            nop, self.phi, list(self._inv_sqrt.shifts),
            tol=self.solver_tol, max_iter=self.max_iter,
        )
        f = np.zeros((4,) + gauge.lattice.shape + (3, 3), dtype=gauge.u.dtype)
        for r_i, res in zip(self._inv_sqrt.residues, results):
            x_i = res.x
            y_i = m.apply(x_i)
            f -= r_i * wilson_bilinear_force(gauge, x_i, y_i, self.phases)
        return f

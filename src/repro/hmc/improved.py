"""Rectangle-improved gauge actions (Luscher-Weisz, Iwasaki, DBW2).

``S = beta sum_x [ c0 sum_{mu<nu} (1 - Re tr P / 3)
                 + c1 sum_{mu!=nu} (1 - Re tr R_{mu nu} / 3) ]``

with ``c0 = 1 - 8 c1`` (normalisation preserving the continuum limit) and
``R_{mu nu}`` the 2x1 rectangle with long side mu.  The force needs the
*rectangle staples*: the six 5-link paths that close each rectangle
containing a given link.  Their index gymnastics is validated — like every
force in this package — against the numerical gradient of the action.

Presets: Luscher-Weisz (tree-level Symanzik) c1 = -1/12; Iwasaki
c1 = -0.331; DBW2 c1 = -1.4088.
"""

from __future__ import annotations

import numpy as np

from repro import su3
from repro.fields import GaugeField
from repro.hmc.action import GaugeAction
from repro.lattice import shift
from repro.loops import average_plaquette, rectangle_field, staple_sum

__all__ = [
    "ImprovedGaugeAction",
    "LUSCHER_WEISZ_C1",
    "IWASAKI_C1",
    "DBW2_C1",
    "rectangle_staple_sum",
]

LUSCHER_WEISZ_C1 = -1.0 / 12.0
IWASAKI_C1 = -0.331
DBW2_C1 = -1.4088


def rectangle_staple_sum(u: np.ndarray, mu: int) -> np.ndarray:
    """Sum of the six rectangle staples ``A`` per transverse direction,
    such that ``sum_x Re tr[U_mu(x) A_mu(x)]`` counts every rectangle
    containing a mu-link once per containment."""
    out = np.zeros_like(u[mu])
    umu = u[mu]
    for nu in range(4):
        if nu == mu:
            continue
        v = u[nu]
        u_d = su3.dag(umu)
        v_d = su3.dag(v)

        # (a) long side mu, link at bottom-left:
        # U(x+mu) V(x+2mu) U^+(x+mu+nu) U^+(x+nu) V^+(x)
        a = su3.mul(
            su3.mul(shift(umu, mu, 1), shift(v, mu, 2)),
            su3.mul(su3.mul(shift(shift(u_d, mu, 1), nu, 1), shift(u_d, nu, 1)), v_d),
        )
        # (b) long side mu, link at bottom-right:
        # V(x+mu) U^+(x+nu) U^+(x-mu+nu) V^+(x-mu) U(x-mu)
        b = su3.mul(
            su3.mul(shift(v, mu, 1), shift(u_d, nu, 1)),
            su3.mul(
                su3.mul(shift(shift(u_d, mu, -1), nu, 1), shift(v_d, mu, -1)),
                shift(umu, mu, -1),
            ),
        )
        # (c) long side mu, link at top-right (daggered in the rectangle):
        # U(x+mu) V^+(x+2mu-nu) U^+(x+mu-nu) U^+(x-nu) V(x-nu)
        c = su3.mul(
            su3.mul(shift(umu, mu, 1), shift(shift(v_d, mu, 2), nu, -1)),
            su3.mul(
                su3.mul(shift(shift(u_d, mu, 1), nu, -1), shift(u_d, nu, -1)),
                shift(v, nu, -1),
            ),
        )
        # (d) long side mu, link at top-left:
        # V^+(x+mu-nu) U^+(x-nu) U^+(x-mu-nu) V(x-mu-nu) U(x-mu)
        d = su3.mul(
            su3.mul(shift(shift(v_d, mu, 1), nu, -1), shift(u_d, nu, -1)),
            su3.mul(
                su3.mul(shift(shift(u_d, mu, -1), nu, -1), shift(shift(v, mu, -1), nu, -1)),
                shift(umu, mu, -1),
            ),
        )
        # (e) long side nu, link at far end (y = x - 2 nu):
        # V^+(x+mu-nu) V^+(x+mu-2nu) U^+(x-2nu) V(x-2nu) V(x-nu)
        e = su3.mul(
            su3.mul(shift(shift(v_d, mu, 1), nu, -1), shift(shift(v_d, mu, 1), nu, -2)),
            su3.mul(
                su3.mul(shift(u_d, nu, -2), shift(v, nu, -2)),
                shift(v, nu, -1),
            ),
        )
        # (f) long side nu, link at near end (daggered in the rectangle):
        # V(x+mu) V(x+mu+nu) U^+(x+2nu) V^+(x+nu) V^+(x)
        f = su3.mul(
            su3.mul(shift(v, mu, 1), shift(shift(v, mu, 1), nu, 1)),
            su3.mul(su3.mul(shift(u_d, nu, 2), shift(v_d, nu, 1)), v_d),
        )
        out += a + b + c + d + e + f
    return out


class ImprovedGaugeAction(GaugeAction):
    """Plaquette + rectangle gauge action with ``c0 = 1 - 8 c1``."""

    def __init__(self, beta: float, c1: float = LUSCHER_WEISZ_C1) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        self.c1 = float(c1)
        self.c0 = 1.0 - 8.0 * self.c1

    def action(self, gauge: GaugeField) -> float:
        u = gauge.u
        vol = gauge.lattice.volume
        s_plaq = self.c0 * 6 * vol * (1.0 - average_plaquette(u))
        rect_sum = 0.0
        n_rects = 0
        for mu in range(4):
            for nu in range(4):
                if nu == mu:
                    continue
                rect_sum += float(np.mean(su3.re_trace(rectangle_field(u, mu, nu))))
                n_rects += 1
        s_rect = self.c1 * n_rects * vol * (1.0 - rect_sum / (su3.NC * n_rects))
        return self.beta * (s_plaq + s_rect)

    def force(self, gauge: GaugeField) -> np.ndarray:
        u = gauge.u
        f = np.empty_like(u)
        for mu in range(4):
            w = self.c0 * su3.mul(u[mu], staple_sum(u, mu))
            w += self.c1 * su3.mul(u[mu], rectangle_staple_sum(u, mu))
            f[mu] = (self.beta / 6.0) * su3.project_algebra(w)
        return f

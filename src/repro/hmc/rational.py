"""Rational approximations of fractional operator powers.

RHMC represents ``det(M^dag M)^{n_f/2}`` for a single flavour
(``n_f = 1``) through ``S = phi^dag (M^dag M)^{-1/2} phi``, evaluating the
inverse square root by a partial-fraction rational approximation

``x^p  ~  a0 + sum_i r_i / (x + b_i)``     on ``[lo, hi]``

whose shifted systems a single multishift CG solves simultaneously.  The
coefficients here come from a damped Gauss-Newton fit of the *relative*
error on a log grid — not the textbook Remez minimax, but it reaches
~1e-5 relative accuracy with ~12 poles over four decades, which is ample
for an exact-accept HMC (the Metropolis step corrects residual error in
the action; only the heatbath draw carries a tiny bias, as in production
RHMC with finite Remez accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares


__all__ = ["RationalApprox", "fit_rational_power"]


@dataclass(frozen=True)
class RationalApprox:
    """``r(x) = a0 + sum_i residues[i] / (x + shifts[i])`` approximating
    ``x**power`` on ``[lo, hi]``."""

    power: float
    lo: float
    hi: float
    a0: float
    residues: np.ndarray
    shifts: np.ndarray
    max_rel_error: float

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        out = np.full_like(x, self.a0)
        for r, b in zip(self.residues, self.shifts):
            out = out + r / (x + b)
        return out

    def apply_operator(self, op, b: np.ndarray, tol: float = 1e-10, max_iter: int = 10000):
        """``r(A) b`` via one multishift-CG solve over all poles.

        ``op`` must be Hermitian positive definite with spectrum inside
        ``[lo, hi]``.  Returns (result, results_list) where results_list
        carries the solver accounting.
        """
        from repro.solvers.multishift import multishift_cg

        results = multishift_cg(op, b, list(self.shifts), tol=tol, max_iter=max_iter)
        out = self.a0 * b
        for r, res in zip(self.residues, results):
            out = out + r * res.x
        return out, results


def fit_rational_power(
    power: float,
    lo: float,
    hi: float,
    n_poles: int = 12,
    n_grid: int = 400,
    rng: int | None = 0,
) -> RationalApprox:
    """Fit ``x**power`` (power in (-1, 1), nonzero) on ``[lo, hi]``.

    Shifts are seeded log-spaced across the interval (the known structure
    of the optimal Zolotarev solution) and optimised together with the
    residues by damped least squares on the relative error over a log grid.
    """
    if not -1.0 < power < 1.0 or power == 0.0:
        raise ValueError(f"power must be in (-1, 1) and nonzero, got {power}")
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got ({lo}, {hi})")
    if n_poles < 1:
        raise ValueError(f"n_poles must be >= 1, got {n_poles}")

    xs = np.geomspace(lo, hi, n_grid)
    target = xs**power

    # Parameterise shifts/residues through logs/signed-logs to keep shifts
    # positive during optimisation (poles must stay off the spectrum).
    b0 = np.geomspace(lo * 0.5, hi * 2.0, n_poles)

    def unpack(theta):
        a0 = theta[0]
        res = theta[1 : 1 + n_poles]
        shifts = np.exp(theta[1 + n_poles :])
        return a0, res, shifts

    def model(theta):
        a0, res, shifts = unpack(theta)
        return a0 + np.sum(res[:, None] / (xs[None, :] + shifts[:, None]), axis=0)

    def residual(theta):
        return (model(theta) - target) / target

    # Initial residues from a linear solve at fixed shifts.
    basis = np.concatenate(
        [np.ones((1, n_grid)), 1.0 / (xs[None, :] + b0[:, None])], axis=0
    )
    coef, *_ = np.linalg.lstsq((basis / target).T, np.ones(n_grid), rcond=None)
    theta0 = np.concatenate([[coef[0]], coef[1:], np.log(b0)])

    sol = least_squares(residual, theta0, method="lm", max_nfev=20000)
    a0, res, shifts = unpack(sol.x)
    err = float(np.max(np.abs(residual(sol.x))))
    order = np.argsort(shifts)
    return RationalApprox(
        power=power,
        lo=lo,
        hi=hi,
        a0=float(a0),
        residues=res[order],
        shifts=shifts[order],
        max_rel_error=err,
    )

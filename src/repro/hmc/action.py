"""Gauge actions, momenta and forces.

Conventions (fixed by the force-vs-numerical-gradient tests):

* momenta ``pi[mu, x]`` are su(3)-valued (anti-Hermitian traceless),
  sampled as ``i c_a T_a`` with ``c_a ~ N(0, 1)``;
* kinetic energy ``K = sum |pi|_F^2`` (Frobenius) which equals
  ``(1/2) sum_a c_a^2``;
* equations of motion ``dU/dt = pi U``, ``dpi/dt = -force(U)``;
* Wilson action ``S = beta sum_{x, mu<nu} (1 - Re tr P / 3)`` gives
  ``force = (beta/6) Ta[U_mu(x) A_mu(x)]`` with ``A`` the staple sum and
  ``Ta`` the traceless anti-Hermitian projector.
"""

from __future__ import annotations

import numpy as np

from repro import su3
from repro.fields import GaugeField
from repro.loops import average_plaquette, staple_sum
from repro.util.rng import ensure_rng

__all__ = ["GaugeAction", "WilsonGaugeAction", "kinetic_energy", "sample_momenta"]


def sample_momenta(
    gauge: GaugeField, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Gaussian su(3) momenta, one per link."""
    rng = ensure_rng(rng)
    return su3.random_algebra((4,) + gauge.lattice.shape, rng=rng, scale=1.0)


def kinetic_energy(pi: np.ndarray) -> float:
    """``K = sum |pi|_F^2 = (1/2) sum_a c_a^2`` over all links."""
    return float(np.sum(np.abs(pi) ** 2))


class GaugeAction:
    """Interface: anything with an action value and a force on the links."""

    def action(self, gauge: GaugeField) -> float:
        raise NotImplementedError

    def force(self, gauge: GaugeField) -> np.ndarray:
        """``F[mu, x]`` in the algebra, with ``dpi/dt = -F``."""
        raise NotImplementedError


class WilsonGaugeAction(GaugeAction):
    """The single-plaquette Wilson action ``S = beta sum (1 - Re tr P / 3)``."""

    def __init__(self, beta: float) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def action(self, gauge: GaugeField) -> float:
        lat = gauge.lattice
        nplanes = 6
        mean_plaq = average_plaquette(gauge.u)  # already 1/3 Re tr
        return self.beta * nplanes * lat.volume * (1.0 - mean_plaq)

    def force(self, gauge: GaugeField) -> np.ndarray:
        u = gauge.u
        f = np.empty_like(u)
        for mu in range(4):
            w = su3.mul(u[mu], staple_sum(u, mu))
            f[mu] = (self.beta / 6.0) * su3.project_algebra(w)
        return f

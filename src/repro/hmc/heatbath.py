"""Cabibbo-Marinari heatbath and overrelaxation for the Wilson gauge action.

The quenched workhorse: thermalises far faster than HMC per unit work, so
the spectroscopy examples use heatbath + overrelaxation to generate their
ensembles.  Updates are vectorised over an entire (direction, parity)
checkerboard at once — links of equal direction and site parity never
appear in each other's staples.

The SU(2) subgroup draw uses the Kennedy-Pendleton algorithm with masked
retries (the vectorised equivalent of its accept loop).
"""

from __future__ import annotations

import numpy as np

from repro import su3
from repro.fields import GaugeField
from repro.lattice import checkerboard_masks
from repro.loops import staple_sum
from repro.util.rng import ensure_rng

__all__ = ["su2_heatbath_pauli", "heatbath_sweep", "overrelaxation_sweep"]


def su2_heatbath_pauli(
    alpha: np.ndarray, rng: np.random.Generator, max_tries: int = 100
) -> np.ndarray:
    """Sample SU(2) elements with ``P(w0) ~ sqrt(1 - w0^2) exp(alpha w0)``
    and the vector part uniform on its sphere.

    ``alpha > 0`` per element; returns Pauli coefficients of unit norm,
    shape ``alpha.shape + (4,)``.  Kennedy-Pendleton with masked retries
    (the vectorised form of its rejection loop).
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    n = alpha.shape
    w0 = np.empty(n)
    pending = np.ones(n, dtype=bool)
    for _ in range(max_tries):
        if not pending.any():
            break
        k = int(pending.sum())
        a = alpha[pending]
        r1, r2, r3, r4 = (rng.random(k) for _ in range(4))
        r1 = np.clip(r1, 1e-300, None)
        r3 = np.clip(r3, 1e-300, None)
        lam2 = -(np.log(r1) + np.cos(2 * np.pi * r2) ** 2 * np.log(r3)) / (2.0 * a)
        accept = r4**2 <= 1.0 - lam2
        idx = np.flatnonzero(pending)
        good = idx[accept]
        w0_vals = 1.0 - 2.0 * lam2[accept]
        w0.flat[good] = w0_vals
        pending.flat[good] = False
    if pending.any():
        # Extremely cold draws: fall back to the mode (w0 -> 1).
        w0[pending] = 1.0

    # Uniform direction on the 3-sphere slice |w_vec| = sqrt(1 - w0^2).
    norm = np.sqrt(np.clip(1.0 - w0**2, 0.0, None))
    vec = rng.normal(size=n + (3,))
    vec /= np.linalg.norm(vec, axis=-1, keepdims=True)
    out = np.empty(n + (4,))
    out[..., 0] = w0
    out[..., 1:] = norm[..., None] * vec
    return out


def _pauli_conj(a: np.ndarray) -> np.ndarray:
    """Quaternion conjugate (= inverse for unit quaternions)."""
    out = a.copy()
    out[..., 1:] *= -1.0
    return out


def _pauli_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Quaternion product matching 2x2 matrix multiplication."""
    a0, av = a[..., 0], a[..., 1:]
    b0, bv = b[..., 0], b[..., 1:]
    out = np.empty(np.broadcast_shapes(a.shape, b.shape))
    out[..., 0] = a0 * b0 - np.sum(av * bv, axis=-1)
    out[..., 1:] = (
        a0[..., None] * bv + b0[..., None] * av - np.cross(av, bv)
    )
    return out


def _subgroup_update(
    u_mu: np.ndarray,
    stap: np.ndarray,
    mask: np.ndarray,
    beta: float,
    rng: np.random.Generator,
    overrelax: bool,
) -> None:
    """Update all three SU(2) subgroups of the masked links in place."""
    for pair in su3.su2_subgroups():
        w = su3.mul(u_mu[mask], stap[mask])
        a = su3.extract_su2(w, pair)  # unnormalised Pauli coeffs
        k = np.linalg.norm(a, axis=-1)
        k = np.where(k == 0.0, 1e-300, k)
        v_hat = a / k[..., None]
        if overrelax:
            # Microcanonical reflection: multiplying by (v_hat^dag)^2 maps the
            # projected block k v_hat -> k v_hat^dag, preserving its scalar
            # part and hence Re tr (the action).  Applying it twice restores
            # the original block (involution), as overrelaxation requires.
            g_new = _pauli_mul(_pauli_conj(v_hat), _pauli_conj(v_hat))
        else:
            # Weight exp((beta/3) Re tr(g W)) = exp((2 beta k / 3) w0) for
            # the substituted unit quaternion w = g v_hat.
            alpha = 2.0 * beta * k / 3.0
            w_new = su2_heatbath_pauli(alpha, rng)
            g_new = _pauli_mul(w_new, _pauli_conj(v_hat))
        g3 = su3.embed_su2(g_new, pair)
        u_mu[mask] = su3.mul(g3, u_mu[mask])


def heatbath_sweep(
    gauge: GaugeField, beta: float, rng: np.random.Generator | int | None = None
) -> None:
    """One Cabibbo-Marinari heatbath sweep over all links, in place."""
    rng = ensure_rng(rng)
    even, odd = checkerboard_masks(gauge.lattice)
    for mu in range(4):
        for mask in (even, odd):
            stap = staple_sum(gauge.u, mu)
            _subgroup_update(gauge.u[mu], stap, mask, beta, rng, overrelax=False)


def overrelaxation_sweep(
    gauge: GaugeField, beta: float, rng: np.random.Generator | int | None = None
) -> None:
    """One microcanonical overrelaxation sweep (action-preserving moves that
    decorrelate; interleave with heatbath sweeps)."""
    rng = ensure_rng(rng)
    even, odd = checkerboard_masks(gauge.lattice)
    for mu in range(4):
        for mask in (even, odd):
            stap = staple_sum(gauge.u, mu)
            _subgroup_update(gauge.u[mu], stap, mask, beta, rng, overrelax=True)

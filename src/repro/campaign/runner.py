"""Resumable campaign drivers: journaled HMC streams and measurement sweeps.

A campaign directory is the unit of durability::

    <dir>/campaign.json            frozen run parameters (physics must match on resume)
    <dir>/ledger.jsonl             one JSON line per completed trajectory/measurement
    <dir>/checkpoints/ckpt_*.rpckpt   CRC-stamped gauge + RNG + driver state

The exact-resume contract: a checkpoint captures the gauge links, the full
serialised RNG state, and the HMC driver counters at a trajectory boundary.
Because every stochastic decision downstream is drawn from that one RNG
stream, a run killed at any point and resumed from its last good checkpoint
replays the *identical* trajectory sequence — same momenta, same
accept/reject draws, same plaquette stamps, bit for bit — and its ledger
ends up line-for-line equal to an uninterrupted run's.  A crash therefore
loses at most one checkpoint interval of work, never correctness.

:func:`run_resilient` adds the supervisor loop used under real fault
injection: it watches the attached :class:`~repro.comm.shm.ShmComm` (a dead
rank process trips the watchdog), tears the comm down leak-free, backs off
exponentially, and restarts the segment from the last good checkpoint.
"""

from __future__ import annotations

import json
import random
import time
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.campaign.checkpoint import CheckpointStore
from repro.campaign.faults import FaultPlan, InjectedCrash
from repro.campaign.ledger import Ledger
from repro.fields import GaugeField
from repro.guard import (
    GuardPolicy,
    SDCDetected,
    UnitarityViolation,
    inspect_gauge,
    resolve_policy,
)
from repro.hmc import HMC, WilsonGaugeAction
from repro.io import atomic_write_bytes, load_gauge
from repro.lattice import Lattice4D
from repro.loops import average_plaquette
from repro.telemetry import registry as _tm_registry
from repro.telemetry.spans import current_span_path
from repro.telemetry.state import STATE
from repro.util.rng import restore_rng, rng_state

__all__ = [
    "CampaignConfig",
    "CampaignSummary",
    "CommFault",
    "ConfigMismatchError",
    "HMCCampaign",
    "MeasurementCampaign",
    "MEASUREMENTS",
    "RetryDeadlineExceeded",
    "RetryPolicy",
    "run_resilient",
]

#: Config fields that define the physics of a stream.  A resume with any of
#: these changed would splice two different Markov chains, so it is refused;
#: ``n_trajectories`` (stream extension) and ``checkpoint_interval`` /
#: ``keep_checkpoints`` (durability tuning) may change freely.
_PHYSICS_FIELDS = (
    "shape",
    "beta",
    "step_size",
    "n_steps",
    "integrator",
    "seed",
    "start",
    "reunit_interval",
)


class CommFault(RuntimeError):
    """The watchdog found the communicator unhealthy (e.g. a dead rank)."""


class ConfigMismatchError(ValueError):
    """Resume attempted with physics parameters that differ from the stored run."""


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one HMC generation campaign."""

    shape: tuple[int, int, int, int]
    beta: float
    n_trajectories: int
    step_size: float = 0.1
    n_steps: int = 10
    integrator: str = "leapfrog"
    seed: int = 12345
    start: str = "hot"
    checkpoint_interval: int = 5
    reunit_interval: int = 25
    keep_checkpoints: int = 3

    def to_dict(self) -> dict:
        d = asdict(self)
        d["shape"] = list(self.shape)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignConfig":
        d = dict(d)
        d["shape"] = tuple(d["shape"])
        return cls(**d)


@dataclass
class CampaignSummary:
    """Outcome of one (possibly resumed) campaign run."""

    n_trajectories: int
    resumed_from: int | None
    acceptance_rate: float
    final_plaquette: float
    skipped_checkpoints: int
    retries: int = 0
    faults_detected: int = 0
    rollbacks: int = 0


class HMCCampaign:
    """A crash-consistent, exactly-resumable HMC trajectory stream."""

    def __init__(self, directory: str | Path, config: CampaignConfig | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._config_path = self.directory / "campaign.json"
        stored = None
        if self._config_path.exists():
            stored = CampaignConfig.from_dict(
                json.loads(self._config_path.read_text())
            )
        if config is None:
            if stored is None:
                raise ValueError(
                    f"no campaign.json in {self.directory} and no config given"
                )
            config = stored
        elif stored is not None:
            for name in _PHYSICS_FIELDS:
                if getattr(config, name) != getattr(stored, name):
                    raise ConfigMismatchError(
                        f"cannot resume: {name} changed "
                        f"({getattr(stored, name)!r} -> {getattr(config, name)!r})"
                    )
        self.config = config
        atomic_write_bytes(
            self._config_path,
            (json.dumps(config.to_dict(), indent=2, sort_keys=True) + "\n").encode(),
        )
        self.store = CheckpointStore(
            self.directory / "checkpoints", keep=config.keep_checkpoints
        )
        self.ledger = Ledger(self.directory / "ledger.jsonl")

    # -- state assembly -------------------------------------------------------

    def _fresh(self) -> tuple[GaugeField, HMC]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        lattice = Lattice4D(cfg.shape)
        if cfg.start == "cold":
            gauge = GaugeField.cold(lattice)
        else:
            gauge = GaugeField.hot(lattice, rng=rng)
        return gauge, self._make_hmc(rng)

    def _make_hmc(self, rng: np.random.Generator) -> HMC:
        cfg = self.config
        return HMC(
            WilsonGaugeAction(cfg.beta),
            step_size=cfg.step_size,
            n_steps=cfg.n_steps,
            integrator=cfg.integrator,
            rng=rng,
        )

    def _restore(self, arrays: dict, meta: dict) -> tuple[GaugeField, HMC]:
        lattice = Lattice4D(self.config.shape)
        gauge = GaugeField(lattice, np.ascontiguousarray(arrays["u"]))
        hmc = self._make_hmc(restore_rng(meta["rng"]))
        hmc.load_state_dict(meta["hmc"])
        return gauge, hmc

    def _checkpoint(self, step: int, gauge: GaugeField, hmc: HMC) -> None:
        self.store.save(
            step,
            {"u": gauge.u},
            {
                "rng": rng_state(hmc.rng),
                "hmc": hmc.state_dict(),
                "plaquette": float(average_plaquette(gauge.u)),
            },
        )

    # -- the driver loop ------------------------------------------------------

    def _journal_fault(self, step: int, record: dict) -> None:
        """Append an SDC fault record to the side journal ``faults.jsonl``.

        Fault records deliberately do NOT go into the main ledger: the
        ledger must stay bit-for-bit identical to an unfaulted run's after
        a successful heal, which is the reproducibility contract the guard
        tests enforce.  When telemetry tracing is on, the record carries the
        open span path so faults can be cross-referenced to the trace.
        """
        span_path = current_span_path()
        if span_path:
            record = {**record, "span": span_path}
        if STATE.counting:
            _tm_registry.get_registry().add("campaign/faults", 1)
        Ledger(self.directory / "faults.jsonl").append({"step": step, **record})

    def _metrics_ledger(self) -> Ledger:
        """The side journal of per-trajectory telemetry counter deltas.

        Kept out of the main ledger (and non-durable) so turning telemetry
        on cannot change ``ledger.jsonl`` by a single byte — the off/
        counters/trace ledger-parity contract the telemetry tests enforce.
        """
        return Ledger(self.directory / "metrics.jsonl", durable=False)

    def _truncate_metrics(self, step: int) -> None:
        if (self.directory / "metrics.jsonl").exists():
            self._metrics_ledger().truncate_to(step)

    def _rollback(self, step: int) -> tuple[GaugeField, HMC, int]:
        """Restore the last good checkpoint (or the fresh start) and truncate
        the ledger to it.  Returns the state to resume from.

        This — not SU(3) reprojection — is the campaign-level heal:
        reprojection restores validity but not the original bits, while the
        exact-resume contract (gauge + RNG + counters) makes the replayed
        stream bit-for-bit identical to an unfaulted one.
        """
        latest = self.store.latest()
        if latest is None:
            gauge, hmc = self._fresh()
            good = 0
        else:
            good, arrays, meta = latest
            gauge, hmc = self._restore(arrays, meta)
        self.ledger.truncate_to(good)
        self._truncate_metrics(good)
        if STATE.counting:
            _tm_registry.get_registry().add("campaign/rollbacks", 1)
        return gauge, hmc, good

    def run(
        self,
        fault: FaultPlan | None = None,
        comm=None,
        progress=None,
        guard: GuardPolicy | str | None = None,
    ) -> CampaignSummary:
        """Run (or resume) the stream to ``n_trajectories`` completed.

        ``comm`` is an optional supervised communicator: before every
        trajectory the watchdog checks it is still healthy and raises
        :class:`CommFault` otherwise, so a killed rank costs one retry, not
        a hang.  ``fault`` is a :class:`~repro.campaign.faults.FaultPlan`
        fired at trajectory boundaries.  ``progress`` is called with
        ``(step, TrajectoryResult)`` after each trajectory.

        ``guard`` (``REPRO_GUARD``-resolved when None) adds a gauge
        inspection at every trajectory boundary.  On corruption, ``detect``
        raises :class:`~repro.guard.SDCDetected` and ``heal`` rolls back to
        the last good checkpoint — recording the incident in
        ``faults.jsonl`` either way.
        """
        cfg = self.config
        policy = resolve_policy(guard)
        latest = self.store.latest()
        if latest is None:
            gauge, hmc = self._fresh()
            start_step = 0
            resumed_from = None
            # A run that died before its first checkpoint may have journaled
            # trajectories it cannot resume; clear them so the replayed
            # stream journals identically.
            self.ledger.truncate_to(0)
            self._truncate_metrics(0)
        else:
            step0, arrays, meta = latest
            gauge, hmc = self._restore(arrays, meta)
            start_step = step0
            resumed_from = step0
            # Work journaled after the restart checkpoint will be redone.
            self.ledger.truncate_to(start_step)
            self._truncate_metrics(start_step)

        faults_detected = 0
        rollbacks = 0
        max_rollbacks = 8  # persistent-corruption backstop, not a tuning knob
        step = start_step
        metrics = self._metrics_ledger() if STATE.counting else None
        counters_prev = _tm_registry.snapshot()["counters"] if metrics else None
        while step < cfg.n_trajectories:
            if fault is not None:
                fault.fire(step, comm=comm, store=self.store, gauge=gauge)
            if comm is not None and not getattr(comm, "healthy", True):
                dead = [
                    r for r, ok in enumerate(comm.workers_alive()) if not ok
                ] if hasattr(comm, "workers_alive") else []
                raise CommFault(
                    f"communicator unhealthy before trajectory {step}"
                    + (f" (dead ranks: {dead})" if dead else "")
                )
            if policy.enabled:
                report = inspect_gauge(gauge.u, policy, context=f"trajectory:{step}")
                if not report.ok:
                    faults_detected += 1
                    action = "rollback" if policy.heal else "detect"
                    self._journal_fault(
                        step, {"kind": "sdc", "action": action, **report.as_record()}
                    )
                    if not policy.heal:
                        exc = UnitarityViolation if report.n_bad_links else SDCDetected
                        raise exc(
                            f"gauge corruption before trajectory {step}: "
                            f"{report.n_bad_links} bad link(s), plaquette range "
                            f"[{report.plaquette_min:.6f}, {report.plaquette_max:.6f}]"
                        )
                    rollbacks += 1
                    if rollbacks > max_rollbacks:
                        raise SDCDetected(
                            f"corruption persists after {max_rollbacks} rollbacks "
                            f"(step {step})"
                        )
                    gauge, hmc, step = self._rollback(step)
                    continue
            result = hmc.trajectory(gauge)
            if (step + 1) % cfg.reunit_interval == 0:
                gauge.reunitarize()
            self.ledger.append(
                {
                    "step": step,
                    "kind": "trajectory",
                    "accepted": result.accepted,
                    "delta_h": result.delta_h,
                    "plaquette": result.plaquette,
                }
            )
            if (step + 1) % cfg.checkpoint_interval == 0 or step + 1 == cfg.n_trajectories:
                self._checkpoint(step + 1, gauge, hmc)
            if metrics is not None:
                cur = _tm_registry.snapshot()["counters"]
                delta = {
                    k: v - counters_prev.get(k, 0)
                    for k, v in cur.items()
                    if v != counters_prev.get(k, 0)
                }
                counters_prev = cur
                metrics.append(
                    {"step": step, "kind": "metrics", "counters": delta}
                )
            if progress is not None:
                progress(step, result)
            step += 1

        return CampaignSummary(
            n_trajectories=cfg.n_trajectories,
            resumed_from=resumed_from,
            acceptance_rate=hmc.acceptance_rate,
            final_plaquette=float(average_plaquette(gauge.u)),
            skipped_checkpoints=len(self.store.skipped),
            faults_detected=faults_detected,
            rollbacks=rollbacks,
        )


# -- measurement sweeps -------------------------------------------------------


def _measure_plaquette(gauge: GaugeField, meta: dict) -> dict:
    return {"plaquette": float(average_plaquette(gauge.u))}


def _measure_observables(gauge: GaugeField, meta: dict) -> dict:
    from repro.measure.observables import gauge_observables

    out: dict[str, float] = {}
    for k, v in gauge_observables(gauge).items():
        if isinstance(v, complex):
            out[f"{k}_re"], out[f"{k}_im"] = float(v.real), float(v.imag)
        else:
            out[k] = float(v)
    return out


def _measure_spectrum(gauge: GaugeField, meta: dict) -> dict:
    from repro.measure.spectrum import measure_spectrum

    res = measure_spectrum(
        gauge, quark_mass=float(meta.get("quark_mass", 0.1)), include_nucleon=False
    )
    return {"pion_mass": float(res.pion.mass), "rho_mass": float(res.rho.mass)}


#: Named per-configuration measurement tasks for :class:`MeasurementCampaign`.
MEASUREMENTS = {
    "plaquette": _measure_plaquette,
    "observables": _measure_observables,
    "spectrum": _measure_spectrum,
}


class MeasurementCampaign:
    """A journaled sweep of per-configuration measurements over an ensemble.

    The ledger *is* the checkpoint: each configuration's results are one
    fsynced JSON line keyed by config index, so a resumed sweep skips
    exactly the completed configurations and re-measures nothing.  Results
    are deterministic functions of the stored gauge field, so the finished
    ledger is identical whether or not the sweep was interrupted.
    """

    def __init__(
        self,
        ensemble_dir: str | Path,
        directory: str | Path,
        measure: str | None = "plaquette",
    ) -> None:
        self.ensemble_dir = Path(ensemble_dir)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ledger = Ledger(self.directory / "measurements.jsonl")
        if callable(measure):
            self._measure = measure
            self.measure_name = getattr(measure, "__name__", "custom")
        else:
            if measure not in MEASUREMENTS:
                raise ValueError(
                    f"unknown measurement {measure!r}; available: {sorted(MEASUREMENTS)}"
                )
            self._measure = MEASUREMENTS[measure]
            self.measure_name = measure

    def run(
        self,
        fault: FaultPlan | None = None,
        comm=None,
        progress=None,
        guard: GuardPolicy | str | None = None,
    ) -> list[dict]:
        policy = resolve_policy(guard)
        paths = sorted(self.ensemble_dir.glob("cfg_*.npz"))
        if not paths:
            raise FileNotFoundError(f"no cfg_*.npz files in {self.ensemble_dir}")
        done = {int(r["step"]) for r in self.ledger.records()}
        for i, path in enumerate(paths):
            if i in done:
                continue
            if fault is not None:
                fault.fire(i)
            gauge, meta = load_gauge(path, guard=policy)
            values = self._measure(gauge, meta)
            record = {
                "step": i,
                "kind": "measurement",
                "config": path.name,
                "measure": self.measure_name,
                **values,
            }
            self.ledger.append(record)
            if progress is not None:
                progress(i, record)
        return self.ledger.records()


# -- the supervisor loop ------------------------------------------------------


class RetryDeadlineExceeded(RuntimeError):
    """The retry loop's total-deadline budget ran out before success.

    Raised *instead of* sleeping when the next backoff would cross
    :attr:`RetryPolicy.deadline`; the triggering failure rides along as
    ``__cause__``, so callers see both why the attempt failed and why the
    supervisor refused to keep trying.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff for restarts.

    ``jitter`` decorrelates the restart stampede of a fleet (every backed-
    off worker sleeping exactly ``base * factor**k`` seconds retries in
    lockstep) while staying replayable: the jitter fraction is a pure hash
    of ``(jitter_seed, key, attempt)``, so the same policy object hands the
    same schedule to the same slot on every resume.  Pass the design-point
    index (or any stable slot id) as ``key``.

    ``deadline`` caps the *total* wall-clock a supervised slot may spend
    across all attempts: a retry whose backoff would cross it raises
    :class:`RetryDeadlineExceeded` instead of sleeping, so unbounded
    backoff can never stall a fleet slot forever.
    """

    max_retries: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.0
    jitter_seed: int = 0
    deadline: float | None = None

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff before retry ``attempt`` (0-based) of slot ``key``.

        The exponential ramp is capped at ``backoff_max`` first; the
        seeded jitter then scales by up to ``1 + jitter``, so the worst
        case is ``backoff_max * (1 + jitter)`` — bounded either way.
        """
        base = min(self.backoff_base * self.backoff_factor**attempt, self.backoff_max)
        if self.jitter:
            token = f"{self.jitter_seed}:{int(key)}:{int(attempt)}".encode()
            u = random.Random(zlib.crc32(token)).random()
            base *= 1.0 + self.jitter * u
        return base


def run_resilient(
    campaign,
    comm_factory=None,
    retry: RetryPolicy | None = None,
    fault: FaultPlan | None = None,
    sleep=time.sleep,
    on_failure=None,
    progress=None,
    guard: GuardPolicy | str | None = None,
    clock=time.monotonic,
    retry_key: int = 0,
) -> CampaignSummary:
    """Supervise ``campaign.run`` through faults: teardown, back off, resume.

    Each attempt gets a fresh communicator from ``comm_factory`` (if given)
    which is *always* closed — worker processes joined, ``/dev/shm``
    segments unlinked — in a ``finally``, so a failed segment cannot leak
    resources.  A failing attempt resumes from the last good checkpoint; a
    fault that persists past ``retry.max_retries`` attempts re-raises.
    ``on_failure`` is called with ``(attempt, exception)`` per failure.

    Guard faults compose naturally: :class:`~repro.guard.SDCDetected` is a
    ``RuntimeError``, so a ``detect``-level campaign that trips a guard is
    torn down and resumed from its last good checkpoint here — supervisor-
    level healing even without ``REPRO_GUARD=heal``.  So does the whole
    communicator fault taxonomy (:class:`~repro.comm.CommError` and its
    subclasses — connect refusal, recv timeout, peer death, torn frame):
    all of them are ``RuntimeError``\\ s, so a socket fault on the ``tcp``
    backend costs one retry with a fresh communicator, not a hang.

    With ``retry.deadline`` set, the loop also tracks total supervised
    wall-clock (``clock``, injectable for tests): a retry whose backoff
    would cross the deadline raises :class:`RetryDeadlineExceeded` from
    the triggering failure instead of sleeping.
    """
    retry = retry if retry is not None else RetryPolicy()
    failures = 0
    started = clock()
    while True:
        comm = comm_factory() if comm_factory is not None else None
        try:
            summary = campaign.run(
                fault=fault, comm=comm, progress=progress, guard=guard
            )
            summary.retries = failures
            return summary
        except (CommFault, InjectedCrash, RuntimeError) as e:
            failures += 1
            if failures > retry.max_retries:
                raise
            delay = retry.delay(failures - 1, key=retry_key)
            if (
                retry.deadline is not None
                and clock() - started + delay > retry.deadline
            ):
                raise RetryDeadlineExceeded(
                    f"retry deadline {retry.deadline:.3g}s would be exceeded "
                    f"after {failures} failure(s); last: {e}"
                ) from e
            if on_failure is not None:
                on_failure(failures, e)
            sleep(delay)
        finally:
            if comm is not None:
                comm.close()

"""Append-only JSON-lines journal of completed campaign work.

Every completed trajectory or measurement lands as one fsynced JSON line,
so after any crash the ledger is a prefix of the uninterrupted run's ledger
plus at most one torn trailing line (which :meth:`Ledger.records` drops).
On resume the runner truncates the ledger back to the restart step with an
atomic rewrite, so a finished campaign's journal is *identical* — line for
line — to the journal of a run that never crashed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.io.atomic import atomic_write_bytes

__all__ = ["LedgerError", "Ledger"]


class LedgerError(RuntimeError):
    """The ledger is damaged beyond the crash-consistency contract."""


class Ledger:
    """A durable JSON-lines journal keyed by an integer ``step`` field."""

    def __init__(self, path: str | Path, durable: bool = True) -> None:
        self.path = Path(path)
        self.durable = durable

    def append(self, record: dict) -> None:
        """Durably append one record (must carry an integer ``step``)."""
        if "step" not in record:
            raise ValueError("ledger records must carry a 'step' field")
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            if self.durable:
                fh.flush()
                os.fsync(fh.fileno())

    def records(self) -> list[dict]:
        """All complete records, tolerating one torn trailing line.

        A crash can only tear the *last* line (appends are sequential);
        unparseable interior lines mean external damage and raise
        :class:`LedgerError` rather than silently dropping history.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_text(encoding="utf-8").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        out: list[dict] = []
        for i, line in enumerate(lines):
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as e:
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-append — expected
                raise LedgerError(
                    f"{self.path}: unparseable interior line {i + 1}: {e}"
                ) from e
        return out

    def last_step(self) -> int | None:
        records = self.records()
        return int(records[-1]["step"]) if records else None

    def truncate_to(self, step: int) -> int:
        """Atomically drop every record with ``record['step'] >= step``.

        Returns the number of records dropped.  Used on resume: work after
        the restart checkpoint will be re-executed and re-journaled, so its
        old records must go for the ledger to match an uninterrupted run.
        """
        records = self.records()
        kept = [r for r in records if int(r["step"]) < step]
        if len(kept) == len(records) and self.path.exists():
            # Still rewrite: clears any torn trailing line left by the crash.
            pass
        data = "".join(json.dumps(r, sort_keys=True) + "\n" for r in kept)
        atomic_write_bytes(self.path, data.encode("utf-8"), durable=self.durable)
        return len(records) - len(kept)

"""Fault-tolerant campaign layer: checkpoint/restart, journaling, fault injection.

Production lattice QCD is a months-long stream of trajectories and
measurements on hardware where rank death is routine; this package supplies
the durability layer that makes long runs safe to start:

:mod:`repro.campaign.checkpoint`
    crash-consistent checkpoint store — atomic write-rename, CRC32-stamped
    payloads, versioned headers, fallback past corrupt files;
:mod:`repro.campaign.ledger`
    fsynced JSON-lines journal of completed work, tolerant of exactly the
    torn tail a crash can produce;
:mod:`repro.campaign.runner`
    resumable HMC and measurement drivers with a comm watchdog and the
    :func:`~repro.campaign.runner.run_resilient` supervisor
    (teardown → backoff → restart from last good checkpoint);
:mod:`repro.campaign.faults`
    deterministic fault injection — crash/SIGKILL the driver, kill a ShmComm
    rank, delay/drop acks, corrupt checkpoints, and silent in-memory bit
    flips (gauge links, spinors, solver scratch) for the guard layer.

The headline guarantee (enforced by tests): a SIGKILL at any trajectory
boundary loses at most one checkpoint interval, and the resumed campaign's
ledger and final observables are bit-for-bit identical to an uninterrupted
run with the same seed.
"""

from repro.campaign.checkpoint import (
    CheckpointError,
    CheckpointStore,
    CorruptCheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.campaign.faults import (
    FaultedOperator,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    corrupt_checkpoint,
    flip_bit,
)
from repro.campaign.ledger import Ledger, LedgerError
from repro.campaign.runner import (
    MEASUREMENTS,
    CampaignConfig,
    CampaignSummary,
    CommFault,
    ConfigMismatchError,
    HMCCampaign,
    MeasurementCampaign,
    RetryDeadlineExceeded,
    RetryPolicy,
    run_resilient,
)

__all__ = [
    "CampaignConfig",
    "CampaignSummary",
    "CheckpointError",
    "CheckpointStore",
    "CommFault",
    "ConfigMismatchError",
    "CorruptCheckpointError",
    "FaultedOperator",
    "FaultInjector",
    "FaultPlan",
    "HMCCampaign",
    "InjectedCrash",
    "Ledger",
    "LedgerError",
    "MEASUREMENTS",
    "MeasurementCampaign",
    "RetryDeadlineExceeded",
    "RetryPolicy",
    "corrupt_checkpoint",
    "flip_bit",
    "read_checkpoint",
    "run_resilient",
    "write_checkpoint",
]

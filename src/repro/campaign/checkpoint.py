"""Crash-consistent checkpoint store for long-running campaigns.

A checkpoint is a single self-verifying container file::

    MAGIC (8 bytes)  |  header length (4-byte LE uint32)  |  header JSON  |  payload

The header carries the format version, the CRC32 and byte count of the
payload, and a free-form JSON ``meta`` dict (trajectory index, serialised
RNG state, driver counters, plaquette stamp).  The payload is an ``npz``
archive of the named arrays (gauge links).  Every write goes through
:func:`repro.io.atomic.atomic_write_bytes`, so a crash mid-save leaves
either the previous complete checkpoint or none — never a torn file.

:class:`CheckpointStore` manages a directory of numbered checkpoints.
``latest()`` walks backwards over the stored steps and returns the newest
checkpoint that validates, recording what it skipped — a truncated file,
a flipped bit, or a foreign version header costs at most one checkpoint
interval, never a silent load of garbage (tmLQCD's resumable trajectory
streams and Chroma's XML task chains follow the same discipline).
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.io.atomic import atomic_write_bytes
from repro.telemetry import registry as _tm_registry
from repro.telemetry.spans import span
from repro.telemetry.state import STATE

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CorruptCheckpointError",
    "write_checkpoint",
    "read_checkpoint",
    "CheckpointStore",
]

CHECKPOINT_MAGIC = b"RPROCKPT"
CHECKPOINT_VERSION = 1

_LEN = struct.Struct("<I")


class CheckpointError(RuntimeError):
    """Base class for checkpoint-layer failures."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint file failed validation (magic, version, length, CRC)."""


def write_checkpoint(
    path: str | Path, arrays: dict[str, np.ndarray], meta: dict
) -> Path:
    """Serialise ``arrays`` + ``meta`` into one atomic, CRC-stamped file."""
    with span("checkpoint_write", cat="campaign"):
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        payload = buf.getvalue()
        header = json.dumps(
            {
                "version": CHECKPOINT_VERSION,
                "crc32": zlib.crc32(payload),
                "payload_bytes": len(payload),
                "meta": meta,
            },
            sort_keys=True,
        ).encode("utf-8")
        blob = CHECKPOINT_MAGIC + _LEN.pack(len(header)) + header + payload
        if STATE.counting:
            reg = _tm_registry.get_registry()
            reg.add("campaign/checkpoints", 1)
            reg.add("campaign/checkpoint_bytes", len(blob))
        return atomic_write_bytes(path, blob)


def read_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load and validate one checkpoint; raise :class:`CorruptCheckpointError`.

    Validation order: magic, header length/JSON, version, payload length
    (truncation), CRC32, npz decode.  Only a file passing all five hands
    data back.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as e:
        raise CorruptCheckpointError(f"unreadable checkpoint {path}: {e}") from e
    if len(blob) < len(CHECKPOINT_MAGIC) + _LEN.size or not blob.startswith(
        CHECKPOINT_MAGIC
    ):
        raise CorruptCheckpointError(f"{path}: bad magic (not a checkpoint file)")
    off = len(CHECKPOINT_MAGIC)
    (header_len,) = _LEN.unpack_from(blob, off)
    off += _LEN.size
    header_bytes = blob[off : off + header_len]
    if len(header_bytes) != header_len:
        raise CorruptCheckpointError(f"{path}: truncated header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise CorruptCheckpointError(f"{path}: unparseable header ({e})") from e
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CorruptCheckpointError(
            f"{path}: version {version!r} != supported {CHECKPOINT_VERSION}"
        )
    payload = blob[off + header_len :]
    if len(payload) != header["payload_bytes"]:
        raise CorruptCheckpointError(
            f"{path}: truncated payload "
            f"({len(payload)} of {header['payload_bytes']} bytes)"
        )
    crc = zlib.crc32(payload)
    if crc != header["crc32"]:
        raise CorruptCheckpointError(
            f"{path}: CRC mismatch (header {header['crc32']}, payload {crc})"
        )
    try:
        with np.load(io.BytesIO(payload)) as data:
            arrays = {k: data[k] for k in data.files}
    except Exception as e:  # zip/npy decode failure after a passing CRC is a bug
        raise CorruptCheckpointError(f"{path}: undecodable payload ({e})") from e
    return arrays, header["meta"]


class CheckpointStore:
    """A directory of numbered, self-verifying checkpoints.

    ``keep`` bounds disk usage while retaining enough history for the
    corruption-fallback path: the newest ``keep`` checkpoints survive
    pruning, so a bad newest file still leaves ``keep - 1`` candidates.
    """

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        #: ``(path, reason)`` pairs skipped by the last ``latest()`` call.
        self.skipped: list[tuple[Path, str]] = []

    def path_for(self, step: int) -> Path:
        return self.directory / f"ckpt_{step:08d}.rpckpt"

    def steps(self) -> list[int]:
        """Stored checkpoint steps, ascending (by filename, not validity)."""
        out = []
        for p in self.directory.glob("ckpt_*.rpckpt"):
            try:
                out.append(int(p.stem.split("_")[1]))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def save(self, step: int, arrays: dict[str, np.ndarray], meta: dict) -> Path:
        """Write checkpoint ``step`` atomically, then prune old ones."""
        meta = dict(meta)
        meta["step"] = int(step)
        path = write_checkpoint(self.path_for(step), arrays, meta)
        self._prune()
        return path

    def load(self, step: int) -> tuple[dict[str, np.ndarray], dict]:
        return read_checkpoint(self.path_for(step))

    def latest(self) -> tuple[int, dict[str, np.ndarray], dict] | None:
        """Newest checkpoint that validates, or ``None`` if none do.

        Corrupt candidates are skipped (recorded in :attr:`skipped`) —
        recovery falls back to the previous good checkpoint instead of
        loading garbage.
        """
        self.skipped = []
        for step in reversed(self.steps()):
            try:
                arrays, meta = self.load(step)
            except CorruptCheckpointError as e:
                self.skipped.append((self.path_for(step), str(e)))
                continue
            return step, arrays, meta
        return None

    def _prune(self) -> None:
        steps = self.steps()
        for step in steps[: -self.keep]:
            try:
                self.path_for(step).unlink()
            except OSError:
                pass

"""Fault injection for the campaign layer.

Three fault surfaces, each deterministic and schedulable so recovery tests
are exact rather than probabilistic:

* **Process faults** (:class:`FaultPlan`): fired by the runner at trajectory
  boundaries — raise :class:`InjectedCrash` (clean in-process crash),
  SIGKILL the whole driver (real crash, exercises crash consistency of the
  ledger/checkpoint fsync discipline), SIGKILL one ShmComm rank (node
  failure), or corrupt a checkpoint on disk.
* **Comm faults** (:class:`FaultInjector`): consumed by the hooks inside
  :meth:`repro.comm.shm.ShmComm._command` — kill a rank just before a
  command is sent, delay an ack, or drop an ack so the master sees a lost
  message.
* **Storage faults** (:func:`corrupt_checkpoint`): truncate a checkpoint,
  flip payload bytes (CRC mismatch), or stamp a wrong version/magic, to
  prove the store falls back to the previous good checkpoint.
* **Silent data corruption** (:func:`flip_bit`, :meth:`FaultPlan.
  flip_gauge_bit_at`, :class:`FaultedOperator`): deterministic in-memory
  bit flips in gauge links, spinors, or a solver's operator stream — the
  faults the :mod:`repro.guard` layer exists to catch.  ``flip_bit`` is
  XOR-based and therefore self-inverse: applying it twice restores the
  original bits exactly.
"""

from __future__ import annotations

import json
import os
import signal
import struct
from pathlib import Path

import numpy as np

from repro.campaign.checkpoint import CHECKPOINT_MAGIC
from repro.dirac.operator import LinearOperator

__all__ = [
    "InjectedCrash",
    "FaultPlan",
    "FaultInjector",
    "FaultedOperator",
    "corrupt_checkpoint",
    "flip_bit",
]


def flip_bit(arr: np.ndarray, flat_index: int, bit: int = 52) -> None:
    """XOR one bit of one float64 word of ``arr`` in place (deterministic).

    ``arr`` may be real or complex float64 — the buffer is reinterpreted as
    uint64 words, so a complex array exposes two words per element.  The
    default ``bit=52`` flips the lowest exponent bit: the value doubles (or
    halves), staying finite, which models the nastiest real-world SDC — a
    silently wrong number that every downstream computation digests without
    complaint.  ``bit=62`` (top exponent bit) instead produces a ~1e307
    outlier that overflows downstream arithmetic.  Self-inverse: flipping
    the same bit twice restores the original bits.
    """
    words = arr.reshape(-1).view(np.uint64)
    words[flat_index % words.size] ^= np.uint64(1) << np.uint64(bit)


class FaultedOperator(LinearOperator):
    """Wrap an operator and flip one bit of its output at one application.

    Models transient corruption of solver scratch / spinor data in the
    middle of a Krylov solve: the ``at_apply``-th application (counting
    both forward and dagger, 1-based) returns a silently corrupted field,
    every other application is untouched.  Used by the guard tests to prove
    the true-residual replay catches what the recurrence cannot see.
    """

    def __init__(
        self,
        op: LinearOperator,
        at_apply: int,
        flat_index: int = 0,
        bit: int = 52,
    ) -> None:
        super().__init__()
        self.op = op
        self.at_apply = int(at_apply)
        self.flat_index = int(flat_index)
        self.bit = int(bit)
        self.fired = False
        self.flops_per_apply = op.flops_per_apply
        self._applications = 0

    def _maybe_corrupt(self, out: np.ndarray) -> np.ndarray:
        self._applications += 1
        if not self.fired and self._applications == self.at_apply:
            self.fired = True
            flip_bit(out, self.flat_index, self.bit)
        return out

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self._maybe_corrupt(self.op.apply(x))

    def apply_dagger(self, x: np.ndarray) -> np.ndarray:
        return self._maybe_corrupt(self.op.apply_dagger(x))

    def apply_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        return self._maybe_corrupt(self.op.apply_into(x, out))

    def apply_dagger_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        return self._maybe_corrupt(self.op.apply_dagger_into(x, out))


class InjectedCrash(RuntimeError):
    """A deliberately injected crash (the in-process analogue of SIGKILL)."""


class FaultPlan:
    """Step-scheduled faults fired at trajectory boundaries by the runner.

    Each fault fires exactly once: after the campaign resumes and replays
    the same step, the consumed fault stays quiet, so a plan describes one
    failure incident rather than an infinite crash loop.
    """

    def __init__(self) -> None:
        self._faults: list[dict] = []

    def crash_at(self, step: int) -> "FaultPlan":
        """Raise :class:`InjectedCrash` just before trajectory ``step`` runs."""
        self._faults.append({"kind": "crash", "step": int(step), "fired": False})
        return self

    def sigkill_at(self, step: int) -> "FaultPlan":
        """SIGKILL the driver process just before trajectory ``step`` runs."""
        self._faults.append({"kind": "sigkill", "step": int(step), "fired": False})
        return self

    def kill_rank_at(self, step: int, rank: int) -> "FaultPlan":
        """Kill comm rank ``rank`` just before trajectory ``step``.

        Works with any backend exposing ``kill_rank`` (shm: SIGKILL the
        worker process; tcp: SIGKILL a local rank or sever an external
        rank's control socket)."""
        self._faults.append(
            {"kind": "kill_rank", "step": int(step), "rank": int(rank), "fired": False}
        )
        return self

    def corrupt_latest_at(self, step: int, mode: str = "flip-payload") -> "FaultPlan":
        """Corrupt the newest on-disk checkpoint just before ``step`` runs."""
        self._faults.append(
            {"kind": "corrupt", "step": int(step), "mode": mode, "fired": False}
        )
        return self

    def flip_gauge_bit_at(
        self, step: int, flat_index: int = 0, bit: int = 52
    ) -> "FaultPlan":
        """Flip one bit of the in-memory gauge field just before ``step``.

        The silent-data-corruption fault: nothing raises, the stream keeps
        producing plausible-looking numbers.  Only a guard (or a divergent
        ledger) exposes it.  See :func:`flip_bit` for the bit semantics.
        """
        self._faults.append(
            {
                "kind": "flip_gauge",
                "step": int(step),
                "index": int(flat_index),
                "bit": int(bit),
                "fired": False,
            }
        )
        return self

    def fire(self, step: int, comm=None, store=None, gauge=None) -> None:
        """Fire (and consume) every unfired fault scheduled for ``step``."""
        for f in self._faults:
            if f["fired"] or f["step"] != step:
                continue
            f["fired"] = True
            kind = f["kind"]
            if kind == "crash":
                raise InjectedCrash(f"injected crash before trajectory {step}")
            if kind == "sigkill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif kind == "kill_rank":
                if comm is None or not hasattr(comm, "kill_rank"):
                    raise InjectedCrash(
                        f"kill_rank fault at step {step} but no process-parallel "
                        "comm (shm/tcp) attached"
                    )
                comm.kill_rank(f["rank"])
            elif kind == "corrupt":
                if store is None:
                    raise InjectedCrash(
                        f"corrupt fault at step {step} but no checkpoint store"
                    )
                steps = store.steps()
                if steps:
                    corrupt_checkpoint(store.path_for(steps[-1]), f["mode"])
            elif kind == "flip_gauge":
                if gauge is None:
                    raise InjectedCrash(
                        f"flip_gauge fault at step {step} but no gauge field attached"
                    )
                flip_bit(gauge.u, f["index"], f["bit"])


class FaultInjector:
    """Command-level fault schedule consumed by the ``_command`` hooks of
    every process-parallel backend (``ShmComm``, ``TcpComm``).

    Faults key on the comm's monotonically increasing command index (the
    first command a comm issues has index 1) and a rank, so a test can say
    "drop rank 1's ack of the third command" and get exactly that.
    """

    def __init__(self) -> None:
        self._faults: list[dict] = []

    def kill_rank(self, rank: int, at_command: int) -> "FaultInjector":
        self._faults.append(
            {"kind": "kill", "rank": int(rank), "cmd": int(at_command), "fired": False}
        )
        return self

    def delay_ack(self, rank: int, at_command: int, seconds: float) -> "FaultInjector":
        self._faults.append(
            {
                "kind": "delay",
                "rank": int(rank),
                "cmd": int(at_command),
                "seconds": float(seconds),
                "fired": False,
            }
        )
        return self

    def drop_ack(self, rank: int, at_command: int) -> "FaultInjector":
        self._faults.append(
            {"kind": "drop", "rank": int(rank), "cmd": int(at_command), "fired": False}
        )
        return self

    # -- hooks called from repro.comm.shm.ShmComm._command --------------------

    def fire_pre_send(self, comm, command_index: int, rank: int) -> None:
        for f in self._faults:
            if (
                f["kind"] == "kill"
                and not f["fired"]
                and f["cmd"] == command_index
                and f["rank"] == rank
            ):
                f["fired"] = True
                comm.kill_rank(rank)

    def fire_pre_recv(self, comm, command_index: int, rank: int) -> tuple[float, bool]:
        """Return ``(delay_seconds, drop_ack)`` for this command/rank."""
        delay, drop = 0.0, False
        for f in self._faults:
            if f["fired"] or f["cmd"] != command_index or f["rank"] != rank:
                continue
            if f["kind"] == "delay":
                f["fired"] = True
                delay += f["seconds"]
            elif f["kind"] == "drop":
                f["fired"] = True
                drop = True
        return delay, drop


def corrupt_checkpoint(path: str | Path, mode: str = "flip-payload") -> None:
    """Damage a checkpoint file on disk in a controlled way.

    ``truncate``     keep only the first half of the file;
    ``flip-payload`` XOR one payload byte (header intact → CRC mismatch);
    ``bad-version``  rewrite the header with an unsupported version;
    ``bad-magic``    overwrite the magic bytes.
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    n_magic = len(CHECKPOINT_MAGIC)
    if mode == "truncate":
        blob = blob[: max(n_magic + 4, len(blob) // 2)]
    elif mode == "flip-payload":
        (header_len,) = struct.unpack_from("<I", blob, n_magic)
        payload_start = n_magic + 4 + header_len
        if payload_start >= len(blob):
            raise ValueError(f"{path}: no payload to corrupt")
        blob[payload_start + (len(blob) - payload_start) // 2] ^= 0xFF
    elif mode == "bad-version":
        (header_len,) = struct.unpack_from("<I", blob, n_magic)
        header = json.loads(blob[n_magic + 4 : n_magic + 4 + header_len].decode())
        header["version"] = -1
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        blob = (
            bytes(blob[:n_magic])
            + struct.pack("<I", len(new_header))
            + new_header
            + bytes(blob[n_magic + 4 + header_len :])
        )
    elif mode == "bad-magic":
        blob[:n_magic] = b"X" * n_magic
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    path.write_bytes(bytes(blob))

"""Gamma matrices and the half-spinor projection trick.

In the chiral (DeGrand-Rossi) basis every gamma matrix has the off-diagonal
block form::

    gamma_mu = [[0,        A_mu],
                [A_mu^dag, 0   ]]

with a unitary 2x2 block ``A_mu``.  Hence for ``s = +-1``::

    (1 + s gamma_mu) psi = (u + s A_mu l,  s A_mu^dag u + l)
                         = (h,             s A_mu^dag h)      with h = u + s A_mu l

so the projected spinor is determined by a *half* spinor ``h`` — the gauge
matrix multiply in the Wilson hopping term then acts on 2 spin components
instead of 4, halving the dominant cost.  This is the "spin projection
trick" every production Dslash uses; :func:`spin_project` /
:func:`spin_reconstruct` implement it in vectorised form.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NS",
    "GAMMAS",
    "GAMMA5",
    "gamma",
    "gamma5",
    "sigma_munu",
    "apply_gamma",
    "apply_gamma5",
    "spin_project",
    "spin_reconstruct",
    "spin_projector_matrix",
]

#: Number of spin components.
NS = 4

# 2x2 blocks A_mu of the chiral-basis gammas, in *physics* order (x, y, z, t).
_SIGMA1 = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_SIGMA2 = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_SIGMA3 = np.array([[1, 0], [0, -1]], dtype=np.complex128)
_A_PHYS = [1j * _SIGMA1, -1j * _SIGMA2, 1j * _SIGMA3, np.eye(2, dtype=np.complex128)]

# Library order: mu = (T, Z, Y, X) -> physics gammas (t, z, y, x).
_A_BLOCKS = np.stack([_A_PHYS[3], _A_PHYS[2], _A_PHYS[1], _A_PHYS[0]])


def _build_gamma(a_block: np.ndarray) -> np.ndarray:
    g = np.zeros((NS, NS), dtype=np.complex128)
    g[0:2, 2:4] = a_block
    g[2:4, 0:2] = a_block.conj().T
    return g


#: GAMMAS[mu] for mu in (T, Z, Y, X) order; each is Hermitian, squares to 1.
GAMMAS = np.stack([_build_gamma(_A_BLOCKS[mu]) for mu in range(4)])

#: gamma5 = gamma_x gamma_y gamma_z gamma_t = diag(1, 1, -1, -1) in this basis.
GAMMA5 = np.diag([1.0, 1.0, -1.0, -1.0]).astype(np.complex128)


def gamma(mu: int) -> np.ndarray:
    """Gamma matrix for lattice direction ``mu`` (0=T, 1=Z, 2=Y, 3=X)."""
    return GAMMAS[mu].copy()


def gamma5() -> np.ndarray:
    """The chirality matrix gamma5."""
    return GAMMA5.copy()


def sigma_munu(mu: int, nu: int) -> np.ndarray:
    """``sigma_{mu nu} = (i/2)[gamma_mu, gamma_nu]`` — enters the clover term."""
    gm, gn = GAMMAS[mu], GAMMAS[nu]
    return 0.5j * (gm @ gn - gn @ gm)


def apply_gamma(psi: np.ndarray, mu: int) -> np.ndarray:
    """Apply ``gamma_mu`` to a fermion field of shape (..., 4, 3)."""
    return np.einsum("st,...tc->...sc", GAMMAS[mu], psi, optimize=True)


def apply_gamma5(psi: np.ndarray) -> np.ndarray:
    """Apply gamma5: sign flip of the lower two spin components (no matmul)."""
    out = psi.copy()
    out[..., 2:4, :] *= -1.0
    return out


def spin_projector_matrix(mu: int, s: int) -> np.ndarray:
    """The full 4x4 projector ``(1 + s gamma_mu)`` (not halved) — reference
    implementation used by tests to validate the half-spinor fast path."""
    return np.eye(NS, dtype=np.complex128) + s * GAMMAS[mu]


def spin_project(psi: np.ndarray, mu: int, s: int) -> np.ndarray:
    """Half-spinor projection: ``h = u + s A_mu l`` of ``(1 + s gamma_mu) psi``.

    ``psi`` has shape (..., 4, 3); the result has shape (..., 2, 3).
    """
    # Match the field precision: the block entries (0, +-1, +-i) are exact
    # in complex64, and a complex128 operand would silently upcast the
    # whole fp32 kernel to fp64 arithmetic.
    a = _A_BLOCKS[mu].astype(psi.dtype, copy=False)
    u = psi[..., 0:2, :]
    lo = psi[..., 2:4, :]
    return u + s * np.einsum("pq,...qc->...pc", a, lo)


def spin_reconstruct(h: np.ndarray, mu: int, s: int) -> np.ndarray:
    """Rebuild the full spinor ``(h, s A_mu^dag h)`` from a half spinor."""
    a = _A_BLOCKS[mu].astype(h.dtype, copy=False)
    out = np.empty(h.shape[:-2] + (NS, h.shape[-1]), dtype=h.dtype)
    out[..., 0:2, :] = h
    out[..., 2:4, :] = s * np.einsum("qp,...qc->...pc", a.conj(), h)
    return out

"""Euclidean Dirac gamma-matrix algebra (DeGrand-Rossi chiral basis).

Direction index convention throughout the library: ``mu = 0, 1, 2, 3``
corresponds to lattice axes ``(T, Z, Y, X)`` — the same order as the array
axes of every field, so ``np.roll(psi, 1, axis=mu)`` shifts along the
direction ``gamma(mu)`` couples to.
"""

from repro.gammas.gamma import (
    NS,
    GAMMAS,
    GAMMA5,
    gamma,
    gamma5,
    sigma_munu,
    apply_gamma,
    apply_gamma5,
    spin_project,
    spin_reconstruct,
    spin_projector_matrix,
)

__all__ = [
    "NS",
    "GAMMAS",
    "GAMMA5",
    "gamma",
    "gamma5",
    "sigma_munu",
    "apply_gamma",
    "apply_gamma5",
    "spin_project",
    "spin_reconstruct",
    "spin_projector_matrix",
]

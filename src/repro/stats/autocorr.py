"""Autocorrelation analysis of Monte Carlo chains (Madras-Sokal windowing)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "autocorrelation_function",
    "integrated_autocorrelation_time",
    "effective_sample_size",
]


def autocorrelation_function(series: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalised autocorrelation ``rho(t)`` for lags 0..max_lag.

    FFT-based, unbiased-in-the-usual-sense normalisation by rho(0).
    """
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"need a 1-D series, got shape {x.shape}")
    n = len(x)
    if n < 2:
        raise ValueError("need at least 2 samples")
    max_lag = min(max_lag if max_lag is not None else n // 2, n - 1)
    x = x - np.mean(x)
    # FFT autocorrelation with zero padding.
    size = 2 ** int(np.ceil(np.log2(2 * n)))
    f = np.fft.rfft(x, size)
    acf = np.fft.irfft(f * np.conj(f))[: max_lag + 1]
    if acf[0] == 0.0:
        return np.ones(max_lag + 1)  # constant series: define rho = 1
    return acf / acf[0]


def integrated_autocorrelation_time(
    series: np.ndarray, window_factor: float = 5.0
) -> tuple[float, int]:
    """(tau_int, window) by the Madras-Sokal self-consistent window.

    ``tau_int = 1/2 + sum_{t=1}^{W} rho(t)`` with the smallest ``W`` such
    that ``W >= window_factor * tau_int(W)``.  For an uncorrelated chain
    tau_int = 0.5; binning/thinning decisions follow from 2 tau_int.
    """
    rho = autocorrelation_function(series)
    tau = 0.5
    for w in range(1, len(rho)):
        tau = 0.5 + float(np.sum(rho[1 : w + 1]))
        if w >= window_factor * tau:
            return max(tau, 0.5), w
    return max(tau, 0.5), len(rho) - 1


def effective_sample_size(series: np.ndarray) -> float:
    """``N_eff = N / (2 tau_int)`` — the error-bar-relevant sample count."""
    tau, _ = integrated_autocorrelation_time(series)
    return len(series) / (2.0 * tau)

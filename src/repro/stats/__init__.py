"""Statistical analysis for Monte Carlo time series.

Every number quoted from an ensemble needs an error bar and an
autocorrelation check; this package provides the standard tooling:
jackknife/bootstrap resampling, binning, and the Madras-Sokal automatic
windowing estimate of the integrated autocorrelation time.
"""

from repro.stats.resampling import (
    jackknife,
    jackknife_samples,
    bootstrap,
    bin_series,
)
from repro.stats.autocorr import (
    autocorrelation_function,
    integrated_autocorrelation_time,
    effective_sample_size,
)

__all__ = [
    "jackknife",
    "jackknife_samples",
    "bootstrap",
    "bin_series",
    "autocorrelation_function",
    "integrated_autocorrelation_time",
    "effective_sample_size",
]

"""Jackknife and bootstrap resampling.

Works on "configuration-major" data: axis 0 indexes Monte Carlo samples,
any further axes (e.g. the timeslices of a correlator) ride along, so a
whole correlator is resampled in one call.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["jackknife_samples", "jackknife", "bootstrap", "bin_series"]


def jackknife_samples(data: np.ndarray) -> np.ndarray:
    """The N leave-one-out means of ``data`` (axis 0 = configurations)."""
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if n < 2:
        raise ValueError(f"jackknife needs >= 2 samples, got {n}")
    total = np.sum(data, axis=0)
    return (total[None, ...] - data) / (n - 1)


def jackknife(
    data: np.ndarray, estimator: Callable[[np.ndarray], np.ndarray] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """(estimate, error) of ``estimator(mean-like input)`` by jackknife.

    ``estimator`` maps a sample mean (shape = data.shape[1:]) to any
    (possibly nonlinear) derived quantity — e.g. an effective mass from a
    correlator.  ``None`` means the identity (plain mean and its error).
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    js = jackknife_samples(data)
    if estimator is None:
        theta_i = js
        theta_full = np.mean(data, axis=0)
    else:
        theta_i = np.array([estimator(js[i]) for i in range(n)])
        theta_full = estimator(np.mean(data, axis=0))
    theta_bar = np.mean(theta_i, axis=0)
    var = (n - 1) / n * np.sum((theta_i - theta_bar) ** 2, axis=0)
    # Bias-corrected estimate: n theta_full - (n-1) theta_bar.
    estimate = n * theta_full - (n - 1) * theta_bar
    return estimate, np.sqrt(var)


def bootstrap(
    data: np.ndarray,
    estimator: Callable[[np.ndarray], np.ndarray] | None = None,
    n_boot: int = 500,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(estimate, error) by bootstrap over configurations."""
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if n < 2:
        raise ValueError(f"bootstrap needs >= 2 samples, got {n}")
    rng = ensure_rng(rng)
    est = estimator or (lambda x: x)
    draws = np.array(
        [est(np.mean(data[rng.integers(0, n, size=n)], axis=0)) for _ in range(n_boot)]
    )
    return est(np.mean(data, axis=0)), np.std(draws, axis=0, ddof=1)


def bin_series(data: np.ndarray, bin_size: int) -> np.ndarray:
    """Average consecutive samples into bins (autocorrelation reduction).

    Trailing samples that do not fill a bin are dropped, as is standard.
    """
    if bin_size < 1:
        raise ValueError(f"bin_size must be >= 1, got {bin_size}")
    data = np.asarray(data, dtype=np.float64)
    n_bins = data.shape[0] // bin_size
    if n_bins == 0:
        raise ValueError(f"series of length {data.shape[0]} has no full bin of {bin_size}")
    trimmed = data[: n_bins * bin_size]
    return trimmed.reshape((n_bins, bin_size) + data.shape[1:]).mean(axis=1)

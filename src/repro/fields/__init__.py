"""Lattice fields.

Gauge configurations are wrapped in :class:`GaugeField` (they carry their
lattice, boundary conditions and precision).  Fermion fields are plain numpy
arrays of shape ``(T, Z, Y, X, 4, 3)`` — solvers treat them as vectors via
the helpers in :mod:`repro.fields.linalg`.
"""

from repro.fields.gauge import GaugeField
from repro.fields.fermion import (
    zero_fermion,
    random_fermion,
    point_source,
    fermion_shape,
    FERMION_SITE_DOF,
)
from repro.fields.linalg import inner, norm2, norm, axpy, xpay, vector_reals

__all__ = [
    "GaugeField",
    "zero_fermion",
    "random_fermion",
    "point_source",
    "fermion_shape",
    "FERMION_SITE_DOF",
    "inner",
    "norm2",
    "norm",
    "axpy",
    "xpay",
    "vector_reals",
]

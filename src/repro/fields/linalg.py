"""Vector-space operations on fields of arbitrary shape.

Solvers treat any complex ndarray as a vector.  These helpers flatten
losslessly (no copies: ``ravel`` on contiguous arrays is a view) and use
BLAS-backed numpy reductions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["inner", "norm2", "norm", "axpy", "xpay", "vector_reals"]


def inner(a: np.ndarray, b: np.ndarray) -> complex:
    """Hermitian inner product ``<a|b> = sum conj(a) * b``."""
    return complex(np.vdot(a, b))


def norm2(a: np.ndarray) -> float:
    """Squared 2-norm, always real and non-negative."""
    return float(np.vdot(a, a).real)


def norm(a: np.ndarray) -> float:
    """2-norm."""
    return float(np.sqrt(norm2(a)))


def axpy(alpha: complex, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y + alpha x`` (new array; hot loops in solvers use in-place ops)."""
    return y + alpha * x


def xpay(x: np.ndarray, alpha: complex, y: np.ndarray) -> np.ndarray:
    """``x + alpha y`` (new array)."""
    return x + alpha * y


def vector_reals(a: np.ndarray) -> int:
    """Number of real degrees of freedom of a field (for flop accounting)."""
    return a.size * (2 if np.iscomplexobj(a) else 1)

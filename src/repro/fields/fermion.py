"""Fermion (quark) field constructors.

A 4-D fermion field is ``psi[t, z, y, x, s, c]`` with 4 spins x 3 colours =
12 complex (24 real) degrees of freedom per site.
"""

from __future__ import annotations

import numpy as np

from repro.lattice import Lattice4D
from repro.util.rng import ensure_rng

__all__ = [
    "FERMION_SITE_DOF",
    "fermion_shape",
    "zero_fermion",
    "random_fermion",
    "point_source",
]

#: Complex degrees of freedom per site (4 spin x 3 colour).
FERMION_SITE_DOF = 12


def fermion_shape(lattice: Lattice4D) -> tuple[int, ...]:
    """Array shape of a fermion field on ``lattice``."""
    return lattice.shape + (4, 3)


def zero_fermion(lattice: Lattice4D, dtype=np.complex128) -> np.ndarray:
    """The zero fermion field."""
    return np.zeros(fermion_shape(lattice), dtype=dtype)


def random_fermion(
    lattice: Lattice4D,
    rng: np.random.Generator | int | None = None,
    dtype=np.complex128,
) -> np.ndarray:
    """Complex Gaussian fermion field (unit variance per real component).

    This is the distribution pseudofermion heatbath draws come from and the
    standard random right-hand side for solver benchmarks.
    """
    rng = ensure_rng(rng)
    shape = fermion_shape(lattice)
    re = rng.normal(size=shape)
    im = rng.normal(size=shape)
    return ((re + 1j * im) / np.sqrt(2.0)).astype(dtype)


def point_source(
    lattice: Lattice4D,
    coord: tuple[int, int, int, int],
    spin: int,
    color: int,
    dtype=np.complex128,
) -> np.ndarray:
    """Delta-function source at ``coord`` with the given spin/colour.

    Twelve of these (all spin-colour combinations) make up a point-source
    propagator, the input to hadron correlators.
    """
    if not (0 <= spin < 4 and 0 <= color < 3):
        raise ValueError(f"invalid spin/colour ({spin}, {color})")
    src = zero_fermion(lattice, dtype=dtype)
    idx = tuple(c % n for c, n in zip(coord, lattice.shape))
    src[idx + (spin, color)] = 1.0
    return src

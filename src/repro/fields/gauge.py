"""The SU(3) gauge configuration.

Layout: ``u[mu, t, z, y, x, a, b]`` — direction-major so each directional
link field is one contiguous block, the access pattern of the hopping
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import su3
from repro.lattice import Lattice4D

__all__ = ["GaugeField"]


@dataclass
class GaugeField:
    """An SU(3) gauge configuration on a :class:`Lattice4D`.

    Attributes
    ----------
    lattice:
        The geometry.
    u:
        Link array of shape ``(4, T, Z, Y, X, 3, 3)``, complex.
    """

    lattice: Lattice4D
    u: np.ndarray

    # -- constructors --------------------------------------------------------

    @classmethod
    def cold(cls, lattice: Lattice4D, dtype=np.complex128) -> "GaugeField":
        """Unit (free-field) configuration: every link is the identity."""
        u = su3.identity((4,) + lattice.shape, dtype=dtype)
        return cls(lattice, u)

    @classmethod
    def hot(
        cls,
        lattice: Lattice4D,
        rng: np.random.Generator | int | None = None,
        dtype=np.complex128,
    ) -> "GaugeField":
        """Haar-random (infinite-temperature) configuration."""
        u = su3.random_su3((4,) + lattice.shape, rng=rng).astype(dtype)
        return cls(lattice, u)

    @classmethod
    def warm(
        cls,
        lattice: Lattice4D,
        eps: float = 0.3,
        rng: np.random.Generator | int | None = None,
        dtype=np.complex128,
    ) -> "GaugeField":
        """Links a distance ~``eps`` from the identity — a smooth but
        non-trivial background for operator and solver tests."""
        u = su3.random_su3_near_identity((4,) + lattice.shape, eps=eps, rng=rng).astype(dtype)
        return cls(lattice, u)

    # -- basics ---------------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.u.dtype

    def copy(self) -> "GaugeField":
        return GaugeField(self.lattice, self.u.copy())

    def astype(self, dtype) -> "GaugeField":
        """Precision cast (fp32 gauge fields feed the mixed-precision inner
        solver)."""
        return GaugeField(self.lattice, self.u.astype(dtype))

    def reunitarize(self) -> None:
        """Project every link back onto SU(3) in place (roundoff hygiene for
        long HMC streams)."""
        self.u = su3.reunitarize(self.u)

    def unitarity_violation(self) -> float:
        return su3.unitarity_violation(self.u)

    def unitarity_drift(self) -> np.ndarray:
        """Per-link ``max |u^dagger u - 1|`` map, shape ``(4, T, Z, Y, X)``.

        The localised form of :meth:`unitarity_violation`; the guard layer
        uses it to find (and reproject) individual corrupted links."""
        return su3.unitarity_drift(self.u)

    def mu(self, mu: int) -> np.ndarray:
        """The link field along direction ``mu`` (view, not copy)."""
        return self.u[mu]

    def nbytes(self) -> int:
        return self.u.nbytes

    def __eq__(self, other: object) -> bool:  # pragma: no cover - convenience
        return (
            isinstance(other, GaugeField)
            and self.lattice == other.lattice
            and np.array_equal(self.u, other.u)
        )

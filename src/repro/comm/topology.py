"""Mapping the rank grid onto a physical torus network.

BlueGene/Q exposes a 5-D torus; the production runs of the paper's era
folded the 4-D Cartesian process grid onto it so that lattice
nearest-neighbour exchanges travel at most a bounded number of torus hops.
:class:`TorusTopology` reproduces that accounting: it embeds the 4-D rank
grid into an n-D torus and reports the hop distance of every halo message,
which the machine model multiplies into per-hop latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
import math

import numpy as np

from repro.comm.rankgrid import RankGrid

__all__ = ["TorusTopology"]


@dataclass(frozen=True)
class TorusTopology:
    """An n-dimensional torus of compute nodes.

    ``dims`` are the torus extents (e.g. a BG/Q midplane is (4, 4, 4, 4, 2)).
    """

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(int(d) < 1 for d in self.dims):
            raise ValueError(f"torus dims must be positive, got {self.dims}")
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))

    @cached_property
    def nnodes(self) -> int:
        return int(math.prod(self.dims))

    def node_coord(self, node: int) -> tuple[int, ...]:
        return tuple(int(c) for c in np.unravel_index(node, self.dims))

    def hop_distance(self, a: int, b: int) -> int:
        """Manhattan distance on the torus (shortest wrap-aware path)."""
        ca, cb = self.node_coord(a), self.node_coord(b)
        hops = 0
        for x, y, n in zip(ca, cb, self.dims):
            d = abs(x - y)
            hops += min(d, n - d)
        return hops

    # -- embedding of the 4-D rank grid ---------------------------------------

    def embed_rank_grid(self, grid: RankGrid) -> dict[int, int]:
        """Map each rank to a torus node, folding lexicographically.

        When the rank grid fits the torus exactly (same total size and each
        rank-grid axis factorisable over torus axes) the lexicographic fold
        keeps lattice neighbours within a small constant hop count.  Ranks
        are assigned round-robin when there are more ranks than nodes
        (multiple ranks per node, as with BG/Q's 16 cores/node).
        """
        if grid.nranks < 1:
            raise ValueError("empty rank grid")
        return {r: r % self.nnodes for r in grid.all_ranks()}

    def max_neighbor_hops(self, grid: RankGrid) -> int:
        """Worst-case torus hops of any lattice nearest-neighbour message
        under :meth:`embed_rank_grid` — the latency multiplier used by the
        machine model."""
        mapping = self.embed_rank_grid(grid)
        worst = 0
        for r in grid.all_ranks():
            for mu in grid.decomposed_axes():
                for direction in (+1, -1):
                    nb = grid.neighbor(r, mu, direction)
                    if nb == r:
                        continue
                    a, b = mapping[r], mapping[nb]
                    if a == b:
                        continue  # same node: no network hop
                    worst = max(worst, self.hop_distance(a, b))
        return worst

    def bisection_links(self) -> int:
        """Links crossing a bisection of the torus — bounds all-to-all
        bandwidth (reported in the machine-description table)."""
        # Cut across the largest dimension: 2 * (volume / largest) wrap+direct.
        largest = max(self.dims)
        if largest == 1:
            return 0
        return 2 * (self.nnodes // largest)

"""Cartesian grid of virtual MPI ranks over the 4 lattice directions."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
import math

import numpy as np

__all__ = ["RankGrid"]


@dataclass(frozen=True)
class RankGrid:
    """A periodic ``PT x PZ x PY x PX`` process grid.

    Rank numbering is lexicographic in ``(T, Z, Y, X)`` order, matching the
    lattice axis convention.
    """

    dims: tuple[int, int, int, int]

    def __post_init__(self) -> None:
        if len(self.dims) != 4:
            raise ValueError(f"RankGrid needs 4 dims, got {self.dims}")
        if any(int(d) < 1 for d in self.dims):
            raise ValueError(f"rank-grid dims must be positive, got {self.dims}")
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))

    @cached_property
    def nranks(self) -> int:
        return int(math.prod(self.dims))

    def coord(self, rank: int) -> tuple[int, ...]:
        """Grid coordinate of ``rank``."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return tuple(int(c) for c in np.unravel_index(rank, self.dims))

    def rank(self, coord: tuple[int, int, int, int]) -> int:
        """Rank of a (periodically wrapped) grid coordinate."""
        wrapped = tuple(c % d for c, d in zip(coord, self.dims))
        return int(np.ravel_multi_index(wrapped, self.dims))

    def neighbor(self, rank: int, mu: int, direction: int) -> int:
        """Rank of the neighbour one step along ``mu`` (direction = +-1)."""
        c = list(self.coord(rank))
        c[mu] += direction
        return self.rank(tuple(c))

    def crosses_boundary(self, rank: int, mu: int, direction: int) -> bool:
        """Whether stepping from ``rank`` along ``mu`` wraps the global
        lattice boundary (where fermion boundary phases apply)."""
        c = self.coord(rank)[mu]
        if direction > 0:
            return c == self.dims[mu] - 1
        return c == 0

    def decomposed_axes(self) -> tuple[int, ...]:
        """Axes actually split over more than one rank."""
        return tuple(mu for mu in range(4) if self.dims[mu] > 1)

    def all_ranks(self) -> range:
        return range(self.nranks)

    def __str__(self) -> str:
        return "x".join(str(d) for d in self.dims)

"""Length-prefixed, CRC-stamped message framing over stream sockets.

TCP is a byte stream: without framing a reader cannot tell where one halo
face ends and the next begins, and a peer killed mid-``send`` leaves a
prefix of a message in the receive buffer that would otherwise be read as
data.  Every message therefore travels as one frame::

    magic(4) | tag(1) | payload_len(4, LE) | crc32(payload)(4, LE) | payload

and the reader verifies all four fields before releasing a single payload
byte.  A short read inside a frame, a wrong magic, or a CRC mismatch
raises :class:`~repro.comm.errors.TornFrameError`; a clean EOF *between*
frames raises :class:`~repro.comm.errors.CommPeerError` (the peer is gone,
not the data); a socket timeout raises
:class:`~repro.comm.errors.CommTimeoutError`.

``tag`` is a one-byte channel discriminator: control frames use
:data:`TAG_OBJ`, halo faces encode ``(mu, slab-role)`` so two faces that
share one socket (a rank grid of extent 2 sends both directions to the
same peer) can be matched out of order.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib

from repro.comm.errors import CommPeerError, CommTimeoutError, TornFrameError

__all__ = [
    "FRAME_MAGIC",
    "TAG_OBJ",
    "TAG_RAW",
    "face_tag",
    "send_frame",
    "recv_frame",
    "send_obj",
    "recv_obj",
]

FRAME_MAGIC = b"RPF1"
_HEADER = struct.Struct("<4sBII")

#: Pickled control objects (commands, acks, handshakes).
TAG_OBJ = 0
#: Raw array bytes (block uploads/downloads, reduction payloads).
TAG_RAW = 1
#: Halo-face frames start here: tag = _TAG_FACE0 + mu * 2 + (role == src_hi).
_TAG_FACE0 = 8


def face_tag(mu: int, high: bool) -> int:
    """Frame tag of the ``src_hi`` (``high``) or ``src_lo`` slab along ``mu``."""
    return _TAG_FACE0 + 2 * mu + (1 if high else 0)


def send_frame(sock: socket.socket, payload, tag: int = TAG_RAW) -> None:
    """Send one framed message; never leaves a half-written header behind
    silently — transport errors surface as typed comm faults."""
    payload = bytes(payload) if not isinstance(payload, (bytes, bytearray, memoryview)) else payload
    header = _HEADER.pack(FRAME_MAGIC, tag, len(payload), zlib.crc32(payload))
    try:
        sock.sendall(header)
        if len(payload):
            sock.sendall(payload)
    except (TimeoutError, socket.timeout) as e:
        raise CommTimeoutError(f"send timed out after {sock.gettimeout()}s") from e
    except OSError as e:
        raise CommPeerError(f"peer gone during send ({e})") from e


def _recv_exact(sock: socket.socket, n: int, mid_frame: bool) -> bytes:
    """Read exactly ``n`` bytes or raise the typed fault for why we couldn't."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except (TimeoutError, socket.timeout) as e:
            raise CommTimeoutError(
                f"recv timed out after {sock.gettimeout()}s ({got}/{n} bytes)"
            ) from e
        except OSError as e:
            raise CommPeerError(f"peer gone during recv ({e})") from e
        if not chunk:
            if mid_frame or got:
                raise TornFrameError(
                    f"connection closed mid-frame ({got}/{n} bytes arrived)"
                )
            raise CommPeerError("peer closed the connection")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[int, bytes]:
    """Receive one complete, checksum-verified frame as ``(tag, payload)``."""
    header = _recv_exact(sock, _HEADER.size, mid_frame=False)
    magic, tag, length, crc = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise TornFrameError(f"bad frame magic {magic!r}")
    payload = _recv_exact(sock, length, mid_frame=True) if length else b""
    if zlib.crc32(payload) != crc:
        raise TornFrameError(
            f"frame CRC mismatch on {length}-byte payload (tag {tag})"
        )
    return tag, payload


def send_obj(sock: socket.socket, obj) -> None:
    """Send one pickled control object as a :data:`TAG_OBJ` frame."""
    send_frame(sock, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), TAG_OBJ)


def recv_obj(sock: socket.socket):
    """Receive one :data:`TAG_OBJ` frame and unpickle it."""
    tag, payload = recv_frame(sock)
    if tag != TAG_OBJ:
        raise TornFrameError(f"expected control frame, got tag {tag}")
    return pickle.loads(payload)

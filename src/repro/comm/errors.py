"""Typed communicator fault taxonomy.

Every failure a distributed backend can surface — a refused rendezvous, a
rank process dying mid-exchange, a frame that arrives torn, a command that
never acks — maps onto one of these classes.  All of them subclass
:class:`CommError`, itself a ``RuntimeError``, so the campaign layer's
:func:`~repro.campaign.runner.run_resilient` retry loop (which catches
``RuntimeError``) supervises socket faults with no extra wiring, while
tests and drills can still assert the *specific* failure mode.
"""

from __future__ import annotations

__all__ = [
    "CommError",
    "CommConnectError",
    "CommPeerError",
    "CommTimeoutError",
    "CommUnavailableError",
    "TornFrameError",
]


class CommError(RuntimeError):
    """Base class of all communicator faults (retryable by ``run_resilient``)."""


class CommConnectError(CommError):
    """Establishing a connection failed (refused, unreachable, bad address)."""


class CommTimeoutError(CommError):
    """A connect, send, or recv exceeded its hard deadline."""


class CommPeerError(CommError):
    """A peer (rank process or master) died or closed its end mid-protocol."""


class TornFrameError(CommError):
    """A length-prefixed frame arrived incomplete or failed its CRC check.

    Raised instead of ever handing partial bytes to the caller: a rank
    killed mid-send must surface as a typed fault, not as silently
    corrupted halo data.
    """


class CommUnavailableError(CommError):
    """An explicitly requested backend's dependency is not importable."""

"""Cross-host SPMD backend: one OS process per rank over TCP sockets.

:class:`TcpComm` is the third communicator backend: where ``shm`` proves
real rank-parallelism on one node's cores, ``tcp`` removes the one-host
restriction — each rank is an OS process reachable only through sockets,
so rank processes may live on *different hosts*, which is the paper's
production deployment shape (and exactly the commodity-Ethernet regime the
DESY cluster papers measured).

Execution model
---------------
* The master (driver) process owns a listening *rendezvous* socket.  By
  default it spawns one local worker process per rank; with
  ``n_external > 0`` it leaves that many ranks for workers started
  elsewhere via ``python -m repro.comm.tcp --connect host:port`` — the
  cross-host mode.  Every worker dials the rendezvous address, handshakes,
  and receives its rank, the grid, and the peer address book.
* Workers open their own peer listeners and build a neighbour mesh
  (higher rank dials lower), so halo faces travel rank-to-rank without
  passing through the master.
* Commands are broadcast master→ranks over the control sockets and
  acknowledged per rank — the ack sweep is the inter-command barrier, as
  in ``shm``.  Rank-local blocks live in *worker* memory; the master keeps
  mirror arrays that commands synchronise: ``run_dslash`` ships the source
  fermion with the command frame and returns the result block in the ack,
  ``exchange_shared`` round-trips the named block set.
* Every message is a length-prefixed CRC-stamped frame
  (:mod:`repro.comm.frame`): a rank killed mid-send produces a typed
  :class:`~repro.comm.errors.TornFrameError`, never silently truncated
  halo data.
* ``allreduce_sum`` is gather-at-root: each rank's partial makes a real
  round trip through its socket and the master sums the echoes in rank
  order — the same in-order arithmetic as ``virtual``/``shm``, hence
  bit-identical results.

Hard deadlines everywhere: connect, send, and recv all carry timeouts, so
a dead, wedged, or partitioned rank surfaces as a typed
:class:`~repro.comm.errors.CommError` (which ``run_resilient`` retries)
instead of a hang.  Teardown is registered with the shared atexit sweep
(:mod:`repro.comm.lifecycle`) and is leak-proof: sockets closed, local
workers joined or killed, nothing orphaned.

An optional ``mpi4py`` fast path with the same master-driven interface
lives in :mod:`repro.comm.mpi` (registered as backend ``mpi`` only when
importable); ``tcp`` itself is dependency-free.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import time
import uuid
import multiprocessing as mp

import numpy as np

from repro.comm.decomposition import Decomposition
from repro.comm.errors import (
    CommConnectError,
    CommError,
    CommPeerError,
    CommTimeoutError,
    TornFrameError,
)
from repro.comm.executor import RankExecutor, format_rank_error
from repro.comm.frame import TAG_OBJ, TAG_RAW, recv_frame, recv_obj, send_frame, send_obj
from repro.comm.halo import (
    HaloField,
    face_bytes_of_shape,
    halo_exchange,
    record_exchange_trace,
)
from repro.comm.lifecycle import discard_live_comm, register_live_comm
from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace
from repro.lattice import Lattice4D
from repro.telemetry import registry as _tm_registry
from repro.telemetry.state import STATE

__all__ = ["TcpComm", "run_worker", "main"]

PROTOCOL_VERSION = 1
_HELLO_TAG = 255  # peer-mesh hello frames carry the dialing rank


# ---------------------------------------------------------------------------
# sockets
# ---------------------------------------------------------------------------


def _dial(addr: tuple[str, int], timeout: float, what: str) -> socket.socket:
    """Connect with a hard deadline; refusal/unreachable is a typed fault."""
    try:
        sock = socket.create_connection(addr, timeout=timeout)
    except (TimeoutError, socket.timeout) as e:
        raise CommTimeoutError(f"{what}: connect to {addr} timed out after {timeout}s") from e
    except OSError as e:
        raise CommConnectError(f"{what}: connect to {addr} failed ({e})") from e
    sock.settimeout(timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _listen(host: str, port: int, backlog: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


def _close_quietly(sock) -> None:
    if sock is None:
        return
    try:
        sock.close()
    except Exception:
        pass


class _SocketPeers:
    """Rank↔rank face transport over one socket per neighbour pair.

    ``recv`` matches frames by ``(peer, tag)``: a frame that arrives for a
    different tag on the same socket (the width-2 grid axis routes both
    directions over one link) is stashed until asked for, so out-of-order
    arrival cannot misfile a face.
    """

    def __init__(self, socks: dict[int, socket.socket]) -> None:
        self._socks = socks
        self._stash: dict[tuple[int, int], list[bytes]] = {}

    def send_one(self, peer: int, tag: int, payload: bytes) -> None:
        send_frame(self._socks[peer], payload, tag)

    def recv(self, peer: int, tag: int) -> bytes:
        stashed = self._stash.get((peer, tag))
        if stashed:
            return stashed.pop(0)
        sock = self._socks[peer]
        while True:
            got_tag, payload = recv_frame(sock)
            if got_tag == tag:
                return payload
            self._stash.setdefault((peer, got_tag), []).append(payload)

    def close(self) -> None:
        for sock in self._socks.values():
            _close_quietly(sock)
        self._socks.clear()
        self._stash.clear()


def _build_peer_mesh(
    rank: int,
    grid: RankGrid,
    listener: socket.socket,
    peers_book: dict[int, tuple[str, int]],
    timeout: float,
) -> _SocketPeers:
    """Connect this rank to every Cartesian neighbour (higher dials lower)."""
    neighbors = sorted(
        {grid.neighbor(rank, mu, d) for mu in range(4) for d in (+1, -1)} - {rank}
    )
    socks: dict[int, socket.socket] = {}
    try:
        for nb in neighbors:
            if nb < rank:
                sock = _dial(tuple(peers_book[nb]), timeout, f"rank {rank} peer mesh")
                send_frame(sock, rank.to_bytes(4, "little"), _HELLO_TAG)
                socks[nb] = sock
        expect = [nb for nb in neighbors if nb > rank]
        listener.settimeout(timeout)
        while expect:
            try:
                sock, _ = listener.accept()
            except (TimeoutError, socket.timeout) as e:
                raise CommTimeoutError(
                    f"rank {rank}: peers {expect} never dialed in ({timeout}s)"
                ) from e
            sock.settimeout(timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            tag, payload = recv_frame(sock)
            if tag != _HELLO_TAG:
                raise TornFrameError(f"rank {rank}: peer hello had tag {tag}")
            dialer = int.from_bytes(payload, "little")
            socks[dialer] = sock
            if dialer in expect:
                expect.remove(dialer)
    except BaseException:
        for sock in socks.values():
            _close_quietly(sock)
        raise
    return _SocketPeers(socks)


# ---------------------------------------------------------------------------
# worker (rank process) side
# ---------------------------------------------------------------------------


def run_worker(
    master_addr: tuple[str, int],
    rank: int | None = None,
    connect_timeout: float = 30.0,
) -> int:
    """Body of one rank process: rendezvous, build mesh, serve commands.

    ``rank`` is fixed for locally spawned workers and ``None`` for
    external joiners (the master assigns the next free rank).  Returns 0
    on a clean ``stop``; typed comm faults propagate to the caller (the
    CLI maps them to a nonzero exit code).

    The rendezvous dial retries until ``connect_timeout`` so worker and
    master start order does not matter across hosts; a rendezvous that
    stays refused for the whole window raises
    :class:`~repro.comm.errors.CommConnectError`.
    """
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            control = _dial(tuple(master_addr), connect_timeout, "worker rendezvous")
            break
        except (CommConnectError, CommTimeoutError):
            if time.monotonic() + 0.2 > deadline:
                raise
            time.sleep(0.2)
    control.settimeout(max(0.5, deadline - time.monotonic()))
    listener = None
    peers = None
    try:
        listener = _listen(control.getsockname()[0], 0, backlog=16)
        send_obj(
            control,
            {
                "proto": PROTOCOL_VERSION,
                "rank": rank,
                "pid": os.getpid(),
                "peer": listener.getsockname()[:2],
            },
        )
        cfg = recv_obj(control)
        my_rank = int(cfg["rank"])
        grid = RankGrid(tuple(cfg["dims"]))
        timeout = float(cfg["timeout"])
        control.settimeout(None)  # the master paces commands; block freely
        peers = _build_peer_mesh(my_rank, grid, listener, cfg["peers"], timeout)
        _close_quietly(listener)
        listener = None
        send_obj(control, ("ready", my_rank))

        executor = RankExecutor(my_rank, grid, peers)
        while True:
            try:
                cmd = recv_obj(control)
            except (CommPeerError, TornFrameError):
                return 1  # master died; nothing to ack
            op = cmd[0]
            if op == "stop":
                try:
                    send_obj(control, ("ok", None))
                except CommError:
                    pass
                return 0
            raw = None
            if op in ("upload", "exchange_frame", "dslash_frame", "reduce"):
                tag, raw = recv_frame(control)
                if tag != TAG_RAW:
                    raise TornFrameError(f"command {op!r}: expected raw frame, got tag {tag}")
            try:
                if op != "telemetry":
                    _tm_registry.add(f"commands/{op}", 1)
                meta, reply_raw = executor.execute(cmd, raw)
                send_obj(control, ("ok", meta, reply_raw is not None))
                if reply_raw is not None:
                    send_frame(control, reply_raw, TAG_RAW)
            except BaseException:
                try:
                    send_obj(control, ("error", format_rank_error(), False))
                except CommError:
                    return 1
    finally:
        if peers is not None:
            peers.close()
        _close_quietly(listener)
        _close_quietly(control)


def _spawned_entry(master_addr: tuple[str, int], rank: int) -> None:
    """Entry point of a locally spawned rank process."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the master handles ^C
    # A forked worker inherits the master's registry contents; reset so the
    # teardown gather returns clean per-rank counts.
    _tm_registry.reset()
    try:
        raise SystemExit(run_worker(master_addr, rank=rank))
    except CommError:
        raise SystemExit(1)


# ---------------------------------------------------------------------------
# master side
# ---------------------------------------------------------------------------


class TcpComm:
    """A communicator whose ranks are processes reachable only over TCP.

    Drop-in for :class:`~repro.comm.VirtualComm` behind the comm protocol
    (``decompose`` / ``exchange`` / ``allreduce_sum`` / ``record_compute``
    / ``trace``) plus the remote-block API the decomposed operator uses
    (:meth:`alloc_blocks`, :meth:`exchange_shared`, :meth:`dagger_shared`,
    :meth:`run_dslash`).  Block storage is authoritative in the workers;
    the master-side arrays returned by :meth:`alloc_blocks` are mirrors
    that commands synchronise, which is what the ``supports_remote_blocks``
    capability flag announces.

    Use as a context manager, or call :meth:`close` — teardown stops the
    workers, closes every socket, and joins or kills local rank processes
    even after a rank failure.
    """

    #: Blocks are worker-resident; master arrays are command-synchronised
    #: mirrors.  The decomposed operator and the ABFT guard accept either
    #: this or ``supports_shared_blocks``.
    supports_remote_blocks = True
    supports_shared_blocks = False

    def __init__(
        self,
        grid: RankGrid,
        trace: CommTrace | None = None,
        timeout: float = 120.0,
        connect_timeout: float = 30.0,
        host: str = "127.0.0.1",
        port: int = 0,
        n_external: int = 0,
        start_method: str | None = None,
        fault_injector=None,
    ) -> None:
        if not isinstance(grid, RankGrid):
            grid = RankGrid(tuple(grid))
        self.grid = grid
        self.trace = trace if trace is not None else CommTrace()
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        self._prefix = f"tcp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._mirrors: dict[str, tuple[tuple[int, ...], str, list[np.ndarray]]] = {}
        self._key_counter = 0
        self._closed = False
        self._listener = None
        self._procs: list = [None] * grid.nranks
        self._socks: list = [None] * grid.nranks
        self._pids: list[int | None] = [None] * grid.nranks
        self._dead: set[int] = set()
        self._faults = fault_injector
        self._ncommands = 0
        register_live_comm(self)
        try:
            self._listener = _listen(host, port, backlog=max(16, grid.nranks))
            self.address = self._listener.getsockname()[:2]
            n_local = grid.nranks - int(n_external)
            if n_local < 0:
                raise ValueError(
                    f"n_external={n_external} exceeds {grid.nranks} ranks"
                )
            if start_method is None:
                start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            ctx = mp.get_context(start_method)
            for r in range(n_local):
                proc = ctx.Process(
                    target=_spawned_entry,
                    args=(self.address, r),
                    daemon=True,
                    name=f"tcp-rank-{r}",
                )
                proc.start()
                self._procs[r] = proc
            self._rendezvous()
        except BaseException:
            self.close()
            raise

    def _rendezvous(self) -> None:
        """Accept all ranks, assign numbers, broadcast the address book."""
        grid = self.grid
        deadline = time.monotonic() + self.connect_timeout
        joined: list[tuple[socket.socket, dict]] = []
        while len(joined) < grid.nranks:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = grid.nranks - len(joined)
                raise CommTimeoutError(
                    f"rendezvous: {missing} of {grid.nranks} rank(s) never "
                    f"connected within {self.connect_timeout}s"
                )
            self._listener.settimeout(remaining)
            try:
                sock, _ = self._listener.accept()
            except (TimeoutError, socket.timeout) as e:
                missing = grid.nranks - len(joined)
                raise CommTimeoutError(
                    f"rendezvous: {missing} of {grid.nranks} rank(s) never "
                    f"connected within {self.connect_timeout}s"
                ) from e
            sock.settimeout(self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = recv_obj(sock)
            if hello.get("proto") != PROTOCOL_VERSION:
                _close_quietly(sock)
                raise CommConnectError(
                    f"rendezvous: protocol mismatch ({hello.get('proto')!r})"
                )
            joined.append((sock, hello))

        taken = {h["rank"] for _, h in joined if h["rank"] is not None}
        free = iter(r for r in grid.all_ranks() if r not in taken)
        book: dict[int, tuple[str, int]] = {}
        for sock, hello in joined:
            r = hello["rank"] if hello["rank"] is not None else next(free)
            r = int(r)
            if self._socks[r] is not None:
                raise CommConnectError(f"rendezvous: rank {r} joined twice")
            self._socks[r] = sock
            self._pids[r] = int(hello["pid"])
            book[r] = tuple(hello["peer"])
        for r in grid.all_ranks():
            send_obj(
                self._socks[r],
                {"rank": r, "dims": grid.dims, "timeout": self.timeout, "peers": book},
            )
        for r in grid.all_ranks():
            reply = recv_obj(self._socks[r])
            if reply != ("ready", r):
                raise CommConnectError(f"rank {r}: bad ready handshake {reply!r}")

    # -- comm protocol (drop-in for VirtualComm) ------------------------------

    @property
    def nranks(self) -> int:
        return self.grid.nranks

    def decompose(self, lattice: Lattice4D) -> Decomposition:
        return Decomposition(lattice, self.grid)

    def exchange(
        self,
        halos: list[HaloField],
        phases: tuple[complex, complex, complex, complex] | None = None,
    ) -> None:
        """Fill ghost shells of master-resident halo fields.

        Arbitrary (non-block) arrays live only in the master, so this runs
        the sequential exchange — identical data motion and trace.  Blocks
        go through :meth:`exchange_shared`.
        """
        halo_exchange(halos, self.grid, trace=self.trace, phases=phases)

    def allreduce_sum(self, partials) -> complex | float:
        """Gather-at-root global sum, reduced in rank order.

        Each partial makes a real round trip through its rank's socket;
        the master sums the echoed values in rank order — the same
        arithmetic as ``virtual``/``shm``, so the result is bit-identical
        regardless of backend.
        """
        if len(partials) != self.nranks:
            raise ValueError(f"expected {self.nranks} partials, got {len(partials)}")
        payloads = [
            np.asarray(p, dtype=np.complex128).tobytes() for p in partials
        ]
        echoes = self._command(("reduce",), payloads=payloads, want_raw=True)
        buf = np.empty(self.nranks, dtype=np.complex128)
        for r, raw in enumerate(echoes):
            buf[r] = np.frombuffer(raw, dtype=np.complex128)[0]
        total = buf[0]
        for r in range(1, self.nranks):
            total = total + buf[r]
        self.trace.record_collective(
            "allreduce_sum", np.asarray(partials[0]).nbytes, self.nranks
        )
        if np.iscomplexobj(np.asarray(partials[0])):
            return complex(total)
        return float(total.real)

    def record_compute(self, kernel: str, flops_per_rank: int) -> None:
        self.trace.record_compute(kernel, flops_per_rank, self.nranks)

    # -- health & fault injection ---------------------------------------------

    def workers_alive(self) -> list[bool]:
        """Per-rank liveness (local: process state; external: socket state)."""
        alive = []
        for r in self.grid.all_ranks():
            proc = self._procs[r]
            if proc is not None:
                alive.append(bool(proc.is_alive()))
            else:
                alive.append(r not in self._dead and self._socks[r] is not None)
        return alive

    @property
    def healthy(self) -> bool:
        """True while the comm is open and every rank is alive."""
        return not self._closed and all(self.workers_alive())

    def ping(self) -> bool:
        """Full command/ack round trip through every rank (the watchdog probe)."""
        self._command(("declare", []))
        return True

    def kill_rank(self, rank: int, sig: int = signal.SIGKILL) -> None:
        """Fault-injection hook: take one rank down hard.

        A local rank gets ``sig`` (SIGKILL models node failure — no
        cleanup, exactly like a production rank loss); an external rank's
        control socket is severed, the strongest action the master has
        across hosts.
        """
        proc = self._procs[rank]
        if proc is not None:
            if proc.is_alive() and proc.pid is not None:
                os.kill(proc.pid, sig)
            proc.join(timeout=5.0)
        else:
            _close_quietly(self._socks[rank])
        self._dead.add(rank)

    # -- remote-block API -----------------------------------------------------

    def new_key(self, tag: str) -> str:
        """A fresh block key (operators may share one comm)."""
        self._key_counter += 1
        return f"{tag}{self._key_counter}"

    def alloc_blocks(self, key: str, shape: tuple[int, ...], dtype) -> list[np.ndarray]:
        """Allocate one zero-filled worker block per rank; return mirrors."""
        self._check_open()
        if key in self._mirrors:
            raise ValueError(f"block key {key!r} already allocated")
        dt = np.dtype(dtype)
        mirrors = [np.zeros(tuple(shape), dtype=dt) for _ in self.grid.all_ranks()]
        self._mirrors[key] = (tuple(shape), dt.str, mirrors)
        self._command(("declare", [(key, tuple(shape), dt.str)]))
        return mirrors

    def blocks(self, key: str) -> list[np.ndarray]:
        """Master-side mirror views of an allocated block set."""
        return self._mirrors[key][2]

    def block_checksums(self, key: str) -> list[int]:
        """Per-rank CRC32 of a block set's mirror bytes (ABFT guard hook).

        Mirrors are synchronised at every command boundary that touches
        the key, so between commands they are exact copies of the worker
        blocks — the same guarantee the shm checksums give.
        """
        import zlib

        self._check_open()
        return [
            zlib.crc32(np.ascontiguousarray(view)) for view in self._mirrors[key][2]
        ]

    def exchange_shared(
        self,
        key: str,
        width: int = 1,
        site_axis_start: int = 0,
        phases: tuple[complex, complex, complex, complex] | None = None,
    ) -> None:
        """Rank-parallel halo exchange of a block set, with trace.

        Ships each rank's mirror with the command, lets the workers
        exchange ghosts peer-to-peer, and reads the filled blocks back
        into the mirrors — one command round trip.
        """
        self._check_open()
        self._record_exchange(key, width)
        mirrors = self._mirrors[key][2]
        payloads = [m.tobytes() for m in mirrors]
        replies = self._command(
            ("exchange_frame", key, width, site_axis_start, phases),
            payloads=payloads,
            want_raw=True,
        )
        for m, raw in zip(mirrors, replies):
            m[...] = np.frombuffer(raw, dtype=m.dtype).reshape(m.shape)

    def dagger_shared(self, u_key: str, udag_key: str) -> None:
        """Each rank daggers its own gauge halo block into ``udag_key``."""
        self._command(("dagger", u_key, udag_key))

    def run_dslash(
        self,
        psi_key: str,
        out_key: str,
        u_key: str,
        udag_key: str,
        phases: tuple[complex, complex, complex, complex],
        diag: float,
        width: int = 1,
        overlap: bool = True,
    ) -> None:
        """One rank-parallel Wilson apply: ship psi, exchange + stencil, return out.

        The links stay worker-resident from construction; only the source
        fermion travels with the command and only the result block comes
        back, so steady-state solver traffic is two block transfers per
        apply plus the peer-to-peer faces.
        """
        self._check_open()
        self._record_exchange(psi_key, width)
        psi_mirrors = self._mirrors[psi_key][2]
        out_mirrors = self._mirrors[out_key][2]
        payloads = [m.tobytes() for m in psi_mirrors]
        replies = self._command(
            ("dslash_frame", psi_key, out_key, u_key, udag_key, width, phases, diag, overlap),
            payloads=payloads,
            want_raw=True,
        )
        for m, raw in zip(out_mirrors, replies):
            m[...] = np.frombuffer(raw, dtype=m.dtype).reshape(m.shape)

    # -- internals ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("TcpComm is closed")

    def _record_exchange(self, key: str, width: int = 1) -> None:
        shape, dtype, _ = self._mirrors[key]
        s0 = len(shape) - 6  # site axes end 6 before the (spin|dir, color) tail
        itemsize = np.dtype(dtype).itemsize
        nbytes = [
            face_bytes_of_shape(shape, s0, width, mu, itemsize) for mu in range(4)
        ]
        record_exchange_trace(self.trace, self.grid, nbytes)

    def _command(
        self,
        cmd: tuple,
        payloads: list[bytes] | None = None,
        want_raw: bool = False,
    ) -> list[bytes | None]:
        """Broadcast ``cmd`` (+ optional per-rank raw payload), sweep acks.

        Returns the per-rank raw replies when ``want_raw``.  Any rank
        failing — timeout, death, torn frame, or an error ack — aborts the
        command with a typed :class:`CommError` naming every failed rank;
        if *every* failure was a deadline, the more specific
        :class:`CommTimeoutError` is raised so callers can distinguish a
        wedged fleet from a dead one.
        """
        self._check_open()
        self._ncommands += 1
        idx = self._ncommands
        blob = pickle.dumps(cmd, protocol=pickle.HIGHEST_PROTOCOL)
        errors: list[tuple[int, Exception]] = []
        sent: set[int] = set()
        for r in self.grid.all_ranks():
            if self._faults is not None:
                self._faults.fire_pre_send(self, idx, r)
            sock = self._socks[r]
            try:
                if sock is None:
                    raise CommPeerError("no control socket")
                send_frame(sock, blob, TAG_OBJ)
                if payloads is not None:
                    send_frame(sock, payloads[r], TAG_RAW)
                sent.add(r)
            except CommError as e:
                self._dead.add(r)
                errors.append((r, e))
        replies: list[bytes | None] = [None] * self.nranks
        for r in self.grid.all_ranks():
            if r not in sent:
                continue
            drop_ack = False
            if self._faults is not None:
                delay, drop_ack = self._faults.fire_pre_recv(self, idx, r)
                if delay > 0.0:
                    time.sleep(delay)
            sock = self._socks[r]
            try:
                ack = pickle.loads(recv_frame(sock)[1])
                status, meta, has_raw = (*ack, False)[:3]
                if has_raw:
                    _, replies[r] = recv_frame(sock)
            except CommError as e:
                self._dead.add(r)
                errors.append((r, e))
                continue
            if drop_ack:
                # Consume the ack (keeping the stream in sync) but treat it
                # as lost — the injected-network-fault path.
                errors.append((r, CommPeerError("ack dropped (injected fault)")))
                continue
            if status != "ok":
                errors.append((r, CommError(str(meta))))
            elif cmd[0] == "telemetry":
                replies[r] = meta
        if errors:
            detail = "\n".join(f"rank {r}: {e}" for r, e in errors)
            cls = (
                CommTimeoutError
                if all(isinstance(e, CommTimeoutError) for _, e in errors)
                else CommError
            )
            raise cls(
                f"tcp command {cmd[0]!r} failed on {len(errors)} rank(s):\n{detail}"
            )
        return replies

    # -- telemetry aggregation ------------------------------------------------

    def gather_worker_metrics(self, timeout: float = 5.0) -> dict[int, dict]:
        """Pull each worker's telemetry snapshot into the master's registry.

        Worker counters land under a ``rank<r>/`` prefix.  Best-effort: a
        dead or slow rank is skipped, never raised on — this runs inside
        :meth:`close`.
        """
        snaps: dict[int, dict] = {}
        for r in self.grid.all_ranks():
            sock = self._socks[r]
            if sock is None or r in self._dead:
                continue
            old = sock.gettimeout()
            try:
                sock.settimeout(timeout)
                send_obj(sock, ("telemetry",))
                ack = pickle.loads(recv_frame(sock)[1])
                if ack[0] == "ok" and isinstance(ack[1], dict):
                    snaps[r] = ack[1]
            except Exception:
                continue
            finally:
                try:
                    sock.settimeout(old)
                except Exception:
                    pass
        reg = _tm_registry.get_registry()
        for r, snap in snaps.items():
            reg.merge(snap, prefix=f"rank{r}/")
        return snaps

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        """Stop workers, close every socket, reap processes.  Idempotent;
        never raises."""
        if self._closed:
            return
        if STATE.counting and any(s is not None for s in self._socks):
            try:
                self.gather_worker_metrics()
            except Exception:
                pass
        self._closed = True
        discard_live_comm(self)
        for r, sock in enumerate(self._socks):
            if sock is None or r in self._dead:
                continue
            try:
                sock.settimeout(2.0)
                send_obj(sock, ("stop",))
            except Exception:
                pass
        for r, sock in enumerate(self._socks):
            if sock is None or r in self._dead:
                continue
            try:
                recv_frame(sock)
            except Exception:
                pass
        for sock in self._socks:
            _close_quietly(sock)
        for proc in self._procs:
            if proc is None:
                continue
            try:
                proc.join(timeout=2.0)
            except Exception:
                pass
            try:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            except Exception:
                pass
            try:
                proc.close()  # release the sentinel fd
            except Exception:
                pass
        _close_quietly(self._listener)
        self._listener = None
        self._socks = [None] * self.grid.nranks
        self._mirrors.clear()

    def __enter__(self) -> "TcpComm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort safety net; tests close explicitly
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# CLI: join a rendezvous from another host
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.comm.tcp --connect host:port [--rank N]``.

    Runs one rank process that joins a :class:`TcpComm` rendezvous —
    started on another host with ``n_external`` ranks reserved — and
    serves commands until the master stops it.
    """
    import argparse
    import sys

    p = argparse.ArgumentParser(description=main.__doc__.splitlines()[0])
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="rendezvous address of the master's TcpComm",
    )
    p.add_argument(
        "--rank", type=int, default=None, help="claim a specific rank (default: assigned)"
    )
    p.add_argument(
        "--connect-timeout", type=float, default=30.0, help="rendezvous deadline [s]"
    )
    args = p.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    try:
        return run_worker(
            (host, int(port)), rank=args.rank, connect_timeout=args.connect_timeout
        )
    except CommError as e:
        print(f"tcp worker: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

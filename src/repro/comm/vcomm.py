"""The virtual communicator: sequential SPMD with full message accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.decomposition import Decomposition
from repro.comm.halo import HaloField, halo_exchange
from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace
from repro.lattice import Lattice4D

__all__ = ["VirtualComm"]


@dataclass
class VirtualComm:
    """A drop-in stand-in for an MPI communicator over a 4-D rank grid.

    All ranks live in one process and execute sequentially, but the data
    motion (halo exchanges, reductions) is performed for real and logged to
    :attr:`trace`.  The machine model turns the log into time at scale.
    """

    grid: RankGrid
    trace: CommTrace = field(default_factory=CommTrace)

    @property
    def nranks(self) -> int:
        return self.grid.nranks

    def decompose(self, lattice: Lattice4D) -> Decomposition:
        return Decomposition(lattice, self.grid)

    def exchange(
        self,
        halos: list[HaloField],
        phases: tuple[complex, complex, complex, complex] | None = None,
    ) -> None:
        """Fill ghost shells from neighbours (see :func:`halo_exchange`)."""
        halo_exchange(halos, self.grid, trace=self.trace, phases=phases)

    def allreduce_sum(self, partials: list) -> complex | float:
        """Global sum of per-rank partial reductions.

        Sequential execution makes the arithmetic exact and reproducible
        regardless of the rank count; the collective is logged so the model
        can charge its latency (dominant at strong-scaling limits).
        """
        if len(partials) != self.nranks:
            raise ValueError(f"expected {self.nranks} partials, got {len(partials)}")
        total = partials[0]
        for p in partials[1:]:
            total = total + p
        payload = np.asarray(partials[0]).nbytes
        self.trace.record_collective("allreduce_sum", payload, self.nranks)
        return total

    def record_compute(self, kernel: str, flops_per_rank: int) -> None:
        self.trace.record_compute(kernel, flops_per_rank, self.nranks)

    # -- context protocol (symmetry with ShmComm; nothing to release) ---------

    def close(self) -> None:
        """No-op: a sequential communicator owns no processes or segments."""

    def __enter__(self) -> "VirtualComm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

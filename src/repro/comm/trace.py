"""Communication/compute event tracing.

The virtual MPI layer cannot measure network time (there is no network), so
it records *what would be communicated*: every halo message with its byte
count and torus direction, every collective, and the nominal flops of every
kernel executed between them.  The machine model replays a trace against a
:class:`~repro.machine.MachineSpec` to predict time at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry import registry as _tm_registry
from repro.telemetry import spans as _tm_spans
from repro.telemetry.state import STATE

__all__ = ["HaloEvent", "CollectiveEvent", "ComputeEvent", "CommTrace"]


@dataclass(frozen=True)
class HaloEvent:
    """One face exchange: ``rank`` sends ``nbytes`` to its ``direction``
    neighbour along lattice axis ``mu``."""

    rank: int
    mu: int
    direction: int
    nbytes: int


@dataclass(frozen=True)
class CollectiveEvent:
    """A reduction over all ranks (e.g. the two inner products of a CG
    iteration).  ``nbytes`` is the payload per rank."""

    kind: str
    nbytes: int
    nranks: int


@dataclass(frozen=True)
class ComputeEvent:
    """Nominal flops of a kernel, per rank (SPMD: all ranks do the same)."""

    kernel: str
    flops_per_rank: int
    nranks: int


@dataclass
class CommTrace:
    """An append-only event log with aggregate queries."""

    events: list = field(default_factory=list)
    enabled: bool = True

    def record_halo(self, rank: int, mu: int, direction: int, nbytes: int) -> None:
        if self.enabled:
            self.events.append(HaloEvent(rank, mu, direction, int(nbytes)))
        if STATE.counting:
            reg = _tm_registry.get_registry()
            reg.add("comm/halo_messages", 1)
            reg.add("comm/halo_bytes", int(nbytes))
            if STATE.tracing:
                _tm_spans.get_trace_buffer().add_instant(
                    "halo",
                    cat="comm",
                    args={"rank": rank, "mu": mu, "dir": direction, "bytes": int(nbytes)},
                )

    def record_collective(self, kind: str, nbytes: int, nranks: int) -> None:
        if self.enabled:
            self.events.append(CollectiveEvent(kind, int(nbytes), int(nranks)))
        if STATE.counting:
            reg = _tm_registry.get_registry()
            reg.add("comm/collectives", 1)
            reg.add(f"comm/collective/{kind}", 1)
            reg.add("comm/collective_bytes", int(nbytes) * int(nranks))
            if STATE.tracing:
                _tm_spans.get_trace_buffer().add_instant(
                    kind,
                    cat="comm",
                    args={"bytes": int(nbytes), "nranks": int(nranks)},
                )

    def record_compute(self, kernel: str, flops_per_rank: int, nranks: int) -> None:
        if self.enabled:
            self.events.append(ComputeEvent(kernel, int(flops_per_rank), int(nranks)))

    # -- aggregates ----------------------------------------------------------

    def halo_events(self) -> list[HaloEvent]:
        return [e for e in self.events if isinstance(e, HaloEvent)]

    def collective_events(self) -> list[CollectiveEvent]:
        return [e for e in self.events if isinstance(e, CollectiveEvent)]

    def compute_events(self) -> list[ComputeEvent]:
        return [e for e in self.events if isinstance(e, ComputeEvent)]

    def total_halo_bytes(self) -> int:
        """Sum of all halo payloads over all ranks."""
        return sum(e.nbytes for e in self.halo_events())

    def halo_bytes_per_rank(self, rank: int) -> int:
        return sum(e.nbytes for e in self.halo_events() if e.rank == rank)

    def max_halo_bytes_per_rank(self) -> int:
        """The critical-path rank payload (what the machine model times)."""
        per_rank: dict[int, int] = {}
        for e in self.halo_events():
            per_rank[e.rank] = per_rank.get(e.rank, 0) + e.nbytes
        return max(per_rank.values(), default=0)

    def message_count(self) -> int:
        return len(self.halo_events())

    def messages_per_rank(self, rank: int) -> int:
        return sum(1 for e in self.halo_events() if e.rank == rank)

    def total_flops(self) -> int:
        return sum(e.flops_per_rank * e.nranks for e in self.compute_events())

    def flops_per_rank(self) -> int:
        return sum(e.flops_per_rank for e in self.compute_events())

    def clear(self) -> None:
        self.events.clear()

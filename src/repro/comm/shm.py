"""Process-parallel SPMD backend: one OS process per rank over shared memory.

Where :class:`~repro.comm.VirtualComm` executes all ranks sequentially in
one process, :class:`ShmComm` runs each rank as a real worker process (the
paper's SPMD model on the cores of one node).  Rank-local fields live in
named ``multiprocessing.shared_memory`` segments, so a halo exchange is a
real face-slab copy from a neighbour's segment into the rank's own ghost
shell, and the interior/boundary-split Dslash stencils the deep interior
while face traffic is outstanding.

Execution model
---------------
* The master (driver) process scatters global fields into the per-rank
  shared blocks, broadcasts one command over per-worker pipes, and waits
  for every rank's acknowledgement — the ack sweep is the inter-command
  barrier.
* Within a command no barrier is needed: the exchange is *pull*-style
  (each rank writes only its own ghost shells and reads only neighbour
  interiors, which are stable for the duration of the command), and the
  face slabs carry interior extents on orthogonal axes
  (:func:`~repro.comm.halo.face_index`), so concurrent writes never
  overlap concurrent reads.
* ``allreduce_sum`` runs through a shared reduction buffer summed in rank
  order — the same in-order sum as ``VirtualComm``, hence bit-identical.

Every command carries a hard timeout: a deadlocked or dead worker turns
into a ``RuntimeError`` instead of a hang, and :meth:`ShmComm.close`
(also run by ``__exit__``/``__del__``) joins the workers and unlinks every
segment even when a rank body raised.

The master owns segment lifetime: workers attach by name and deregister
from the ``resource_tracker`` so only :meth:`close` unlinks (the
documented double-unlink workaround for Python < 3.13).
"""

from __future__ import annotations

import os
import signal
import time
import traceback
import uuid
import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from repro.comm.decomposition import Decomposition
from repro.comm.halo import (
    HaloField,
    face_bytes_of_shape,
    face_index,
    halo_exchange,
    record_exchange_trace,
)
from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace
from repro.lattice import Lattice4D
from repro.telemetry import registry as _tm_registry
from repro.telemetry.state import STATE

from repro.comm.lifecycle import (
    LIVE_COMMS as _LIVE_COMMS,  # re-export: pre-lifecycle callers import from here
    close_live_comms,
    discard_live_comm,
    register_live_comm,
)

__all__ = ["ShmComm", "close_live_comms"]


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a master-owned segment without adopting its lifetime.

    The resource tracker keys its cache by segment *name*, so letting the
    attach register (and later unregister) the name would erase the
    master's own registration and turn the final unlink into a tracker
    error.  Suppressing registration during the attach leaves exactly one
    owner — the master — as on Python >= 3.13's ``track=False``.
    """
    from multiprocessing import resource_tracker

    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


def _fill_own_ghosts(
    rank: int,
    grid: RankGrid,
    get,
    key: str,
    width: int,
    site_axis_start: int,
    phases: tuple[complex, complex, complex, complex] | None,
) -> None:
    """Pull all ghost shells of ``rank``'s block from neighbour interiors.

    Writes only this rank's ghosts and reads only interior slabs, so all
    ranks can run concurrently with no intra-command synchronisation.
    The copy-then-scale order matches :func:`~repro.comm.halo.halo_exchange`
    exactly, including the boundary-phase application.
    """
    mine = get(key, rank)
    ndim, s0, w = mine.ndim, site_axis_start, width
    for mu in range(4):
        nb_hi = grid.neighbor(rank, mu, +1)
        ghost = mine[face_index(ndim, s0, w, mu, "ghost_hi")]
        ghost[...] = get(key, nb_hi)[face_index(ndim, s0, w, mu, "src_lo")]
        if phases is not None and grid.crosses_boundary(rank, mu, +1):
            ghost *= phases[mu]

        nb_lo = grid.neighbor(rank, mu, -1)
        ghost = mine[face_index(ndim, s0, w, mu, "ghost_lo")]
        ghost[...] = get(key, nb_lo)[face_index(ndim, s0, w, mu, "src_hi")]
        if phases is not None and grid.crosses_boundary(rank, mu, -1):
            ghost *= np.conj(phases[mu])


def _worker_main(rank: int, grid: RankGrid, conn, prefix: str) -> None:
    """Rank body: attach segments lazily, execute commands until ``stop``."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the master handles ^C
    from repro.kernels.halo import HaloStencil, dagger_halo_links, full_box, split_boxes

    # A forked worker inherits the master's registry contents; reset so the
    # teardown gather returns clean per-rank counts (spawn starts clean and
    # re-resolves REPRO_TELEMETRY from the environment).
    _tm_registry.reset()

    segments: dict[tuple[str, int], shared_memory.SharedMemory] = {}
    arrays: dict[tuple[str, int], np.ndarray] = {}
    shapes: dict[str, tuple[tuple[int, ...], str]] = {}
    stencil = HaloStencil()

    def get(key: str, r: int) -> np.ndarray:
        arr = arrays.get((key, r))
        if arr is None:
            shape, dtype = shapes[key]
            seg = _attach_segment(f"{prefix}-{key}-{r}")
            segments[(key, r)] = seg
            arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
            arrays[(key, r)] = arr
        return arr

    running = True
    while running:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            break
        try:
            op = cmd[0]
            reply = None
            if op not in ("stop", "telemetry"):
                _tm_registry.add(f"commands/{op}", 1)
            if op == "stop":
                running = False
            elif op == "telemetry":
                reply = _tm_registry.snapshot()
            elif op == "declare":
                # (key, shape, dtype) triples for later lazy attachment.
                for key, shape, dtype in cmd[1]:
                    shapes[key] = (tuple(shape), dtype)
            elif op == "exchange":
                _, key, width, s0, phases = cmd
                _fill_own_ghosts(rank, grid, get, key, width, s0, phases)
            elif op == "dagger":
                _, u_key, udag_key = cmd
                dagger_halo_links(get(u_key, rank), out=get(udag_key, rank))
            elif op == "dslash":
                _, psi_key, out_key, u_key, udag_key, width, phases, diag, overlap = cmd
                psi = get(psi_key, rank)
                out = get(out_key, rank)
                u = get(u_key, rank)
                udag = get(udag_key, rank)
                local = out.shape[:4]
                if overlap:
                    deep, boundary = split_boxes(local, width)
                    if deep is not None:
                        stencil.wilson_box_into(out, u, udag, psi, width, deep, diag)
                    _fill_own_ghosts(rank, grid, get, psi_key, width, 0, phases)
                    for box in boundary:
                        stencil.wilson_box_into(out, u, udag, psi, width, box, diag)
                else:
                    _fill_own_ghosts(rank, grid, get, psi_key, width, 0, phases)
                    stencil.wilson_box_into(
                        out, u, udag, psi, width, full_box(local), diag
                    )
            else:
                raise ValueError(f"unknown shm command {op!r}")
            conn.send(("ok", reply))
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    for seg in segments.values():
        try:
            seg.close()
        except Exception:
            pass
    try:
        conn.close()
    except Exception:
        pass


class ShmComm:
    """A communicator whose ranks are real processes over shared memory.

    Drop-in for :class:`~repro.comm.VirtualComm` behind the comm protocol
    (``decompose`` / ``exchange`` / ``allreduce_sum`` / ``record_compute``
    / ``trace``), plus the shared-block API the decomposed operator uses
    to run halo exchange and the Dslash stencil rank-parallel:
    :meth:`alloc_blocks`, :meth:`exchange_shared`, :meth:`dagger_shared`,
    :meth:`run_dslash`.

    Use as a context manager, or call :meth:`close` — teardown stops the
    workers and unlinks every shared segment even after a rank failure.
    """

    #: Capability flag the decomposed operator keys the parallel path on.
    supports_shared_blocks = True

    def __init__(
        self,
        grid: RankGrid,
        trace: CommTrace | None = None,
        timeout: float = 120.0,
        start_method: str | None = None,
        fault_injector=None,
    ) -> None:
        self.grid = grid
        self.trace = trace if trace is not None else CommTrace()
        self.timeout = float(timeout)
        self._prefix = f"repro-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._segments: dict[tuple[str, int], shared_memory.SharedMemory] = {}
        self._blocks: dict[str, tuple[tuple[int, ...], str, list[np.ndarray]]] = {}
        self._key_counter = 0
        self._closed = False
        self._workers: list = []
        self._pipes: list = []
        # Duck-typed hook (see repro.campaign.faults.FaultInjector): consulted
        # around every command send/ack so tests and the campaign harness can
        # kill a rank, delay an ack, or drop an ack at a chosen point.
        self._faults = fault_injector
        self._ncommands = 0
        register_live_comm(self)
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(start_method)
        try:
            for r in grid.all_ranks():
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(r, grid, child, self._prefix),
                    daemon=True,
                    name=f"shm-rank-{r}",
                )
                proc.start()
                child.close()
                self._workers.append(proc)
                self._pipes.append(parent)
        except BaseException:
            self.close()
            raise

    # -- comm protocol (drop-in for VirtualComm) ------------------------------

    @property
    def nranks(self) -> int:
        return self.grid.nranks

    def decompose(self, lattice: Lattice4D) -> Decomposition:
        return Decomposition(lattice, self.grid)

    def exchange(
        self,
        halos: list[HaloField],
        phases: tuple[complex, complex, complex, complex] | None = None,
    ) -> None:
        """Fill ghost shells of master-resident halo fields.

        Arbitrary (non-shared) arrays cannot be touched by the workers, so
        this runs the sequential exchange — identical data motion and
        trace.  Shared blocks go through :meth:`exchange_shared`.
        """
        halo_exchange(halos, self.grid, trace=self.trace, phases=phases)

    def allreduce_sum(self, partials) -> complex | float:
        """Global sum through the shared reduction buffer, in rank order.

        The in-order sum is the same arithmetic as ``VirtualComm``, so the
        result is bit-identical regardless of backend.
        """
        if len(partials) != self.nranks:
            raise ValueError(f"expected {self.nranks} partials, got {len(partials)}")
        buf = self._reduction_buffer()
        for r, p in enumerate(partials):
            buf[r] = p
        total = buf[0]
        for r in range(1, self.nranks):
            total = total + buf[r]
        self.trace.record_collective(
            "allreduce_sum", np.asarray(partials[0]).nbytes, self.nranks
        )
        if np.iscomplexobj(np.asarray(partials[0])):
            return complex(total)
        return float(total.real)

    def record_compute(self, kernel: str, flops_per_rank: int) -> None:
        self.trace.record_compute(kernel, flops_per_rank, self.nranks)

    # -- health & fault injection ---------------------------------------------

    def workers_alive(self) -> list[bool]:
        """Per-rank liveness of the worker processes (cheap, no round trip)."""
        return [bool(w.is_alive()) for w in self._workers]

    @property
    def healthy(self) -> bool:
        """True while the comm is open and every rank process is alive."""
        return not self._closed and all(self.workers_alive())

    def ping(self) -> bool:
        """Full command/ack round trip through every rank (the watchdog probe).

        An empty ``declare`` is a no-op on the workers but still traverses
        the pipes, so a dead, wedged, or deadlocked rank surfaces as the
        usual ``RuntimeError`` instead of a later mid-physics hang.
        """
        self._command(("declare", []))
        return True

    def kill_rank(self, rank: int, sig: int = signal.SIGKILL) -> None:
        """Fault-injection hook: deliver ``sig`` to one worker process.

        SIGKILL models node failure — the worker gets no chance to clean
        up, exactly like a production rank loss.  Master-owned segments are
        unaffected; :meth:`close` still unlinks everything.
        """
        proc = self._workers[rank]
        if proc.is_alive() and proc.pid is not None:
            os.kill(proc.pid, sig)
        proc.join(timeout=5.0)

    # -- shared-block API -----------------------------------------------------

    def new_key(self, tag: str) -> str:
        """A fresh segment-name-safe key (operators may share one comm)."""
        self._key_counter += 1
        return f"{tag}{self._key_counter}"

    def alloc_blocks(self, key: str, shape: tuple[int, ...], dtype) -> list[np.ndarray]:
        """Allocate one zero-filled shared block per rank; return master views."""
        self._check_open()
        if key in self._blocks:
            raise ValueError(f"shared block key {key!r} already allocated")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        views: list[np.ndarray] = []
        for r in self.grid.all_ranks():
            seg = shared_memory.SharedMemory(
                create=True, size=nbytes, name=f"{self._prefix}-{key}-{r}"
            )
            self._segments[(key, r)] = seg
            arr = np.ndarray(shape, dtype=dt, buffer=seg.buf)
            arr[...] = 0
            views.append(arr)
        self._blocks[key] = (tuple(shape), dt.str, views)
        self._command(("declare", [(key, tuple(shape), dt.str)]))
        return views

    def blocks(self, key: str) -> list[np.ndarray]:
        """Master-side views of an allocated shared block set."""
        return self._blocks[key][2]

    def block_checksums(self, key: str) -> list[int]:
        """Per-rank CRC32 of a shared block set's current bytes.

        The ABFT guard layer (:mod:`repro.guard.abft`) compares these
        against encode-time values to localise silent corruption of the
        shared link halos to a rank.  Master-side read only; the workers
        are not involved, so this is safe to call between commands.
        """
        import zlib

        self._check_open()
        return [
            zlib.crc32(np.ascontiguousarray(view)) for view in self._blocks[key][2]
        ]

    def exchange_shared(
        self,
        key: str,
        width: int = 1,
        site_axis_start: int = 0,
        phases: tuple[complex, complex, complex, complex] | None = None,
    ) -> None:
        """Rank-parallel halo exchange of a shared block set, with trace."""
        self._check_open()
        self._record_exchange(key, width)
        self._command(("exchange", key, width, site_axis_start, phases))

    def dagger_shared(self, u_key: str, udag_key: str) -> None:
        """Each rank daggers its own gauge halo block into ``udag_key``."""
        self._command(("dagger", u_key, udag_key))

    def run_dslash(
        self,
        psi_key: str,
        out_key: str,
        u_key: str,
        udag_key: str,
        phases: tuple[complex, complex, complex, complex],
        diag: float,
        width: int = 1,
        overlap: bool = True,
    ) -> None:
        """One rank-parallel Wilson apply: exchange + stencil per worker.

        With ``overlap`` the workers stencil the deep interior before
        touching ghosts (the interior/boundary split); the result is
        bit-identical either way.  Halo traffic is recorded exactly as the
        sequential backend records it.
        """
        self._check_open()
        self._record_exchange(psi_key, width)
        self._command(
            ("dslash", psi_key, out_key, u_key, udag_key, width, phases, diag, overlap)
        )

    # -- internals ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShmComm is closed")

    def _reduction_buffer(self) -> np.ndarray:
        views = self._blocks.get("_reduce")
        if views is None:
            return self.alloc_blocks("_reduce", (self.nranks,), np.complex128)[0]
        return views[2][0]

    def _record_exchange(self, key: str, width: int = 1) -> None:
        shape, dtype, _ = self._blocks[key]
        s0 = len(shape) - 6  # site axes end 6 before the (spin|dir, color) tail
        # Fermion blocks are (t,z,y,x,4,3) -> s0=0; gauge (4,t,z,y,x,3,3) -> s0=1.
        itemsize = np.dtype(dtype).itemsize
        nbytes = [
            face_bytes_of_shape(shape, s0, width, mu, itemsize) for mu in range(4)
        ]
        record_exchange_trace(self.trace, self.grid, nbytes)

    def _command(self, cmd: tuple) -> None:
        """Broadcast ``cmd`` and collect every rank's ack (the barrier)."""
        self._check_open()
        self._ncommands += 1
        idx = self._ncommands
        errors: list[str] = []
        for r, pipe in enumerate(self._pipes):
            if self._faults is not None:
                self._faults.fire_pre_send(self, idx, r)
            try:
                pipe.send(cmd)
            except (BrokenPipeError, OSError) as e:
                errors.append(f"rank {r}: send failed ({e})")
        for r, pipe in enumerate(self._pipes):
            drop_ack = False
            if self._faults is not None:
                delay, drop_ack = self._faults.fire_pre_recv(self, idx, r)
                if delay > 0.0:
                    time.sleep(delay)
            try:
                if not pipe.poll(self.timeout):
                    errors.append(f"rank {r}: no reply within {self.timeout}s")
                    continue
                status, payload = pipe.recv()
            except (EOFError, OSError) as e:
                errors.append(f"rank {r}: worker died ({e})")
                continue
            if drop_ack:
                # Consume the ack (keeping the pipe in sync) but treat it as
                # lost — the injected-network-fault path.
                errors.append(f"rank {r}: ack dropped (injected fault)")
                continue
            if status != "ok":
                errors.append(f"rank {r}:\n{payload}")
        if errors:
            raise RuntimeError(
                f"shm command {cmd[0]!r} failed on {len(errors)} rank(s):\n"
                + "\n".join(errors)
            )

    # -- telemetry aggregation ------------------------------------------------

    def gather_worker_metrics(self, timeout: float = 5.0) -> dict[int, dict]:
        """Pull each worker's telemetry registry snapshot into the master's.

        Worker counters land in the master registry under a ``rank<r>/``
        prefix (e.g. ``rank2/commands/dslash``).  Returns the raw per-rank
        snapshots.  Best-effort: a dead or slow rank is skipped, never
        raised on — this runs inside :meth:`close`.
        """
        snaps: dict[int, dict] = {}
        live: list[int] = []
        for r, pipe in enumerate(self._pipes):
            try:
                pipe.send(("telemetry",))
                live.append(r)
            except Exception:
                pass
        for r in live:
            pipe = self._pipes[r]
            try:
                if not pipe.poll(timeout):
                    continue
                status, payload = pipe.recv()
            except Exception:
                continue
            if status == "ok" and isinstance(payload, dict):
                snaps[r] = payload
        reg = _tm_registry.get_registry()
        for r, snap in snaps.items():
            reg.merge(snap, prefix=f"rank{r}/")
        return snaps

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        """Stop workers and unlink all segments.  Idempotent; never raises."""
        if self._closed:
            return
        if STATE.counting:
            try:
                self.gather_worker_metrics()
            except Exception:
                pass
        self._closed = True
        discard_live_comm(self)
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
            except Exception:
                pass
        for pipe in self._pipes:
            try:
                if pipe.poll(2.0):
                    pipe.recv()
            except Exception:
                pass
        for proc in self._workers:
            try:
                proc.join(timeout=2.0)
            except Exception:
                pass
        for proc in self._workers:
            try:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            except Exception:
                pass
        for pipe in self._pipes:
            try:
                pipe.close()
            except Exception:
                pass
        for seg in self._segments.values():
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass
        self._segments.clear()
        self._blocks.clear()

    def __enter__(self) -> "ShmComm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort safety net; tests close explicitly
        try:
            self.close()
        except Exception:
            pass

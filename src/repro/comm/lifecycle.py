"""Backend-agnostic registry of open communicators + the atexit sweep.

Every process-owning communicator (``shm``, ``tcp``, ``mpi``) registers
itself here on construction and deregisters in ``close()``.  The single
``atexit`` sweep closes stragglers so a crashing driver (unhandled
exception, ``sys.exit`` mid-campaign) cannot leak ``/dev/shm`` segments,
listening sockets, or orphan rank processes, whichever backend it held
open.  A SIGKILLed master is unprotectable by definition — worker
processes are daemonic and die with it, and shm segment names are
PID-scoped, so nothing persists either way.
"""

from __future__ import annotations

import atexit
import weakref

__all__ = ["register_live_comm", "discard_live_comm", "close_live_comms", "LIVE_COMMS"]

#: Weak so a collected communicator (whose ``__del__`` already closed it)
#: does not pin itself alive just by having been registered.
LIVE_COMMS: "weakref.WeakSet" = weakref.WeakSet()


def register_live_comm(comm) -> None:
    """Track an open communicator for the atexit sweep."""
    LIVE_COMMS.add(comm)


def discard_live_comm(comm) -> None:
    """Stop tracking a communicator (its ``close()`` ran)."""
    LIVE_COMMS.discard(comm)


def close_live_comms() -> None:
    """Close every still-open communicator (idempotent; registered atexit)."""
    for comm in list(LIVE_COMMS):
        comm.close()


atexit.register(close_live_comms)

"""Scatter/gather between a global lattice array and rank-local blocks."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.comm.rankgrid import RankGrid
from repro.lattice import Lattice4D

__all__ = ["Decomposition"]


@dataclass(frozen=True)
class Decomposition:
    """An even block decomposition of ``lattice`` over ``grid``.

    Every rank owns a contiguous ``(lt, lz, ly, lx)`` block.  Arrays may have
    non-site axes before the 4 site axes (gauge fields lead with the
    direction axis); pass their count as ``site_axis_start``.
    """

    lattice: Lattice4D
    grid: RankGrid

    def __post_init__(self) -> None:
        if not self.lattice.divisible_by(self.grid.dims):
            raise ValueError(
                f"lattice {self.lattice.shape} not divisible by rank grid {self.grid.dims}"
            )

    @cached_property
    def local_shape(self) -> tuple[int, ...]:
        return self.lattice.local_shape(self.grid.dims)

    @cached_property
    def local_volume(self) -> int:
        v = 1
        for n in self.local_shape:
            v *= n
        return v

    def block_slices(self, rank: int, site_axis_start: int = 0) -> tuple[slice, ...]:
        """Index slices selecting ``rank``'s block of a global array."""
        coord = self.grid.coord(rank)
        slices = [slice(None)] * site_axis_start
        for mu in range(4):
            lo = coord[mu] * self.local_shape[mu]
            slices.append(slice(lo, lo + self.local_shape[mu]))
        return tuple(slices)

    def scatter(self, global_arr: np.ndarray, site_axis_start: int = 0) -> list[np.ndarray]:
        """Split a global array into per-rank contiguous local copies."""
        self._check_shape(global_arr, site_axis_start)
        return [
            np.ascontiguousarray(global_arr[self.block_slices(r, site_axis_start)])
            for r in self.grid.all_ranks()
        ]

    def gather(self, locals_: list[np.ndarray], site_axis_start: int = 0) -> np.ndarray:
        """Reassemble the global array from rank-local blocks."""
        if len(locals_) != self.grid.nranks:
            raise ValueError(f"expected {self.grid.nranks} blocks, got {len(locals_)}")
        lead = locals_[0].shape[:site_axis_start]
        trail = locals_[0].shape[site_axis_start + 4 :]
        out = np.empty(lead + self.lattice.shape + trail, dtype=locals_[0].dtype)
        for r in self.grid.all_ranks():
            out[self.block_slices(r, site_axis_start)] = locals_[r]
        return out

    def _check_shape(self, arr: np.ndarray, site_axis_start: int) -> None:
        site_shape = arr.shape[site_axis_start : site_axis_start + 4]
        if site_shape != self.lattice.shape:
            raise ValueError(
                f"array site shape {site_shape} != lattice {self.lattice.shape} "
                f"(site_axis_start={site_axis_start})"
            )

"""Optional ``mpi4py`` fast path behind the same master-driven interface.

When ``mpi4py`` is importable, :class:`MpiComm` offers the ``tcp``
backend's exact interface — master-driven commands, worker-resident
blocks, mirror synchronisation, in-order ``allreduce_sum`` — but moves
every byte through MPI instead of raw sockets, so a site with a tuned MPI
stack (InfiniBand, slingshot, vendor collectives under ``MPI_Send``)
gets that fabric for free.  The rank processes are spawned dynamically
with ``MPI.COMM_SELF.Spawn`` and the reused
:class:`~repro.comm.executor.RankExecutor` supplies identical command
semantics, so results are bit-identical to every other backend.

The backend registers itself in :func:`repro.comm.registry.available_comms`
only when the import succeeds; requesting ``mpi`` explicitly without
``mpi4py`` raises the typed
:class:`~repro.comm.errors.CommUnavailableError` (the same degrade-loudly
pattern the kernel registry uses for ``numba``).  This container ships no
MPI, so only the degradation branch is exercised by the test suite; the
happy path mirrors ``tcp`` one-for-one by construction.
"""

from __future__ import annotations

import numpy as np

from repro.comm.decomposition import Decomposition
from repro.comm.errors import CommError, CommUnavailableError
from repro.comm.executor import RankExecutor, format_rank_error
from repro.comm.halo import HaloField, face_bytes_of_shape, halo_exchange, record_exchange_trace
from repro.comm.lifecycle import discard_live_comm, register_live_comm
from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace
from repro.lattice import Lattice4D

__all__ = ["MpiComm", "mpi_available", "require_mpi"]

#: Message-tag bases on the spawned intercommunicator.
_TAG_CMD = 1
_TAG_RAW = 2
_TAG_ACK = 3


def mpi_available() -> bool:
    """True when ``mpi4py`` imports (checked lazily, never at module import)."""
    try:
        import mpi4py  # noqa: F401
    except Exception:
        return False
    return True


def require_mpi():
    """Return the ``mpi4py.MPI`` module or raise the typed unavailability."""
    try:
        from mpi4py import MPI
    except Exception as e:  # pragma: no cover - depends on site install
        raise CommUnavailableError(
            "comm backend 'mpi' requires mpi4py, which is not importable; "
            "install mpi4py or choose one of the always-available backends "
            "(see repro.comm.available_comms())"
        ) from e
    return MPI  # pragma: no cover - depends on site install


class _MpiPeers:
    """Rank↔rank face transport over an MPI intracommunicator.

    Matches the :class:`~repro.comm.executor.PeerTransport` duck type:
    frame tags map onto MPI message tags directly, so the same
    ``(peer, tag)`` matching that the socket transport implements with a
    stash is done by the MPI matching engine.
    """

    def __init__(self, comm) -> None:  # pragma: no cover - needs mpi4py
        self._comm = comm

    def send_one(self, peer: int, tag: int, payload: bytes) -> None:  # pragma: no cover
        self._comm.Send([np.frombuffer(payload, dtype=np.uint8), len(payload)], dest=peer, tag=tag)

    def recv(self, peer: int, tag: int) -> bytes:  # pragma: no cover - needs mpi4py
        status = require_mpi().Status()
        self._comm.Probe(source=peer, tag=tag, status=status)
        buf = np.empty(status.Get_count(), dtype=np.uint8)
        self._comm.Recv([buf, buf.size], source=peer, tag=tag)
        return buf.tobytes()


def _mpi_worker_main() -> None:  # pragma: no cover - runs inside mpiexec-spawned ranks
    """Entry point of a spawned MPI rank (see ``MpiComm.__init__``)."""
    MPI = require_mpi()
    parent = MPI.Comm.Get_parent()
    world = MPI.COMM_WORLD
    rank = world.Get_rank()
    cfg = parent.bcast(None, root=0)
    executor = RankExecutor(rank, RankGrid(tuple(cfg["dims"])), _MpiPeers(world))
    while True:
        cmd = parent.bcast(None, root=0)
        if cmd[0] == "stop":
            break
        raw = None
        if cmd[0] in ("upload", "exchange_frame", "dslash_frame", "reduce"):
            raw = parent.recv(source=0, tag=_TAG_RAW)
        try:
            meta, reply_raw = executor.execute(cmd, raw)
            parent.send(("ok", meta, reply_raw), dest=0, tag=_TAG_ACK)
        except BaseException:
            parent.send(("error", format_rank_error(), None), dest=0, tag=_TAG_ACK)
    parent.Disconnect()


class MpiComm:
    """Master-driven communicator over dynamically spawned MPI ranks.

    Interface-identical to :class:`~repro.comm.tcp.TcpComm` (same
    capability flags, same command set, same in-rank-order reductions);
    only the transport differs.  Constructing it without ``mpi4py``
    raises :class:`~repro.comm.errors.CommUnavailableError`.
    """

    supports_remote_blocks = True
    supports_shared_blocks = False

    def __init__(
        self,
        grid: RankGrid,
        trace: CommTrace | None = None,
        timeout: float = 120.0,
        fault_injector=None,
    ) -> None:
        MPI = require_mpi()  # raises CommUnavailableError when absent
        # pragma: no cover start - everything below needs a live MPI runtime
        if not isinstance(grid, RankGrid):
            grid = RankGrid(tuple(grid))
        self.grid = grid
        self.trace = trace if trace is not None else CommTrace()
        self.timeout = float(timeout)
        self._faults = fault_injector
        self._mirrors: dict[str, tuple[tuple[int, ...], str, list[np.ndarray]]] = {}
        self._key_counter = 0
        self._ncommands = 0
        self._closed = False
        import sys

        self._inter = MPI.COMM_SELF.Spawn(
            sys.executable,
            args=["-c", "import repro.comm.mpi as m; m._mpi_worker_main()"],
            maxprocs=grid.nranks,
        )
        self._inter.bcast({"dims": grid.dims, "timeout": self.timeout}, root=MPI.ROOT)
        register_live_comm(self)

    # -- comm protocol --------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.grid.nranks

    def decompose(self, lattice: Lattice4D) -> Decomposition:
        return Decomposition(lattice, self.grid)

    def exchange(
        self,
        halos: list[HaloField],
        phases: tuple[complex, complex, complex, complex] | None = None,
    ) -> None:
        halo_exchange(halos, self.grid, trace=self.trace, phases=phases)

    def allreduce_sum(self, partials) -> complex | float:
        if len(partials) != self.nranks:
            raise ValueError(f"expected {self.nranks} partials, got {len(partials)}")
        payloads = [np.asarray(p, dtype=np.complex128).tobytes() for p in partials]
        echoes = self._command(("reduce",), payloads=payloads, want_raw=True)
        total = np.frombuffer(echoes[0], dtype=np.complex128)[0]
        for r in range(1, self.nranks):
            total = total + np.frombuffer(echoes[r], dtype=np.complex128)[0]
        self.trace.record_collective(
            "allreduce_sum", np.asarray(partials[0]).nbytes, self.nranks
        )
        if np.iscomplexobj(np.asarray(partials[0])):
            return complex(total)
        return float(total.real)

    def record_compute(self, kernel: str, flops_per_rank: int) -> None:
        self.trace.record_compute(kernel, flops_per_rank, self.nranks)

    # -- remote-block API (same mirror semantics as TcpComm) ------------------

    def new_key(self, tag: str) -> str:
        self._key_counter += 1
        return f"{tag}{self._key_counter}"

    def alloc_blocks(self, key: str, shape: tuple[int, ...], dtype) -> list[np.ndarray]:
        if key in self._mirrors:
            raise ValueError(f"block key {key!r} already allocated")
        dt = np.dtype(dtype)
        mirrors = [np.zeros(tuple(shape), dtype=dt) for _ in self.grid.all_ranks()]
        self._mirrors[key] = (tuple(shape), dt.str, mirrors)
        self._command(("declare", [(key, tuple(shape), dt.str)]))
        return mirrors

    def blocks(self, key: str) -> list[np.ndarray]:
        return self._mirrors[key][2]

    def block_checksums(self, key: str) -> list[int]:
        import zlib

        return [zlib.crc32(np.ascontiguousarray(v)) for v in self._mirrors[key][2]]

    def exchange_shared(self, key, width=1, site_axis_start=0, phases=None) -> None:
        self._record_exchange(key, width)
        mirrors = self._mirrors[key][2]
        replies = self._command(
            ("exchange_frame", key, width, site_axis_start, phases),
            payloads=[m.tobytes() for m in mirrors],
            want_raw=True,
        )
        for m, raw in zip(mirrors, replies):
            m[...] = np.frombuffer(raw, dtype=m.dtype).reshape(m.shape)

    def dagger_shared(self, u_key: str, udag_key: str) -> None:
        self._command(("dagger", u_key, udag_key))

    def run_dslash(
        self, psi_key, out_key, u_key, udag_key, phases, diag, width=1, overlap=True
    ) -> None:
        self._record_exchange(psi_key, width)
        psi_mirrors = self._mirrors[psi_key][2]
        out_mirrors = self._mirrors[out_key][2]
        replies = self._command(
            ("dslash_frame", psi_key, out_key, u_key, udag_key, width, phases, diag, overlap),
            payloads=[m.tobytes() for m in psi_mirrors],
            want_raw=True,
        )
        for m, raw in zip(out_mirrors, replies):
            m[...] = np.frombuffer(raw, dtype=m.dtype).reshape(m.shape)

    # -- internals ------------------------------------------------------------

    def _record_exchange(self, key: str, width: int = 1) -> None:
        shape, dtype, _ = self._mirrors[key]
        s0 = len(shape) - 6
        itemsize = np.dtype(dtype).itemsize
        nbytes = [face_bytes_of_shape(shape, s0, width, mu, itemsize) for mu in range(4)]
        record_exchange_trace(self.trace, self.grid, nbytes)

    def _command(self, cmd, payloads=None, want_raw=False):
        self._ncommands += 1
        idx = self._ncommands
        if self._faults is not None:
            for r in self.grid.all_ranks():
                self._faults.fire_pre_send(self, idx, r)
        self._inter.bcast(cmd, root=require_mpi().ROOT)
        if payloads is not None:
            for r in self.grid.all_ranks():
                self._inter.send(payloads[r], dest=r, tag=_TAG_RAW)
        replies = [None] * self.nranks
        errors = []
        for r in self.grid.all_ranks():
            status, meta, raw = self._inter.recv(source=r, tag=_TAG_ACK)
            if status != "ok":
                errors.append((r, meta))
            else:
                replies[r] = raw if want_raw else meta
        if errors:
            detail = "\n".join(f"rank {r}: {m}" for r, m in errors)
            raise CommError(
                f"mpi command {cmd[0]!r} failed on {len(errors)} rank(s):\n{detail}"
            )
        return replies

    def ping(self) -> bool:
        self._command(("declare", []))
        return True

    def workers_alive(self) -> list[bool]:
        return [not self._closed] * self.nranks

    @property
    def healthy(self) -> bool:
        return not self._closed

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        discard_live_comm(self)
        try:
            self._inter.bcast(("stop",), root=require_mpi().ROOT)
            self._inter.Disconnect()
        except Exception:
            pass
        self._mirrors.clear()

    def __enter__(self) -> "MpiComm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

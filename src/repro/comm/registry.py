"""Communicator registry: named SPMD backends behind one protocol.

One data path, several transports:

``virtual``
    :class:`~repro.comm.VirtualComm` — all ranks sequential in one
    process.  Exact, dependency-free, works at any rank count; scaling
    curves come from the machine model replaying its trace.
``shm``
    :class:`~repro.comm.shm.ShmComm` — one OS process per rank over
    POSIX shared memory, real parallel halo exchange and overlapped
    Dslash.  Turns the E2/E3 scaling benchmarks from modelled into
    measured on the host's cores; bit-for-bit identical results.
``tcp``
    :class:`~repro.comm.tcp.TcpComm` — one OS process per rank over TCP
    sockets with CRC-framed messages; ranks may join from *other hosts*
    via ``python -m repro.comm.tcp --connect host:port``.  Bit-for-bit
    identical results, hard timeouts, typed faults.
``mpi``
    :class:`~repro.comm.mpi.MpiComm` — same interface over ``mpi4py``
    when it is importable (listed only then); requesting it without
    ``mpi4py`` raises :class:`~repro.comm.errors.CommUnavailableError`.

Selection precedence mirrors the kernel registry: explicit ``comm=``
argument > ``REPRO_COMM`` environment variable > the ``virtual`` default.
The docstrings and error messages here enumerate backends from one
``_COMM_NAMES`` table so a new backend registers in exactly one place.
"""

from __future__ import annotations

import os

from repro.comm.errors import CommUnavailableError
from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace
from repro.comm.vcomm import VirtualComm

__all__ = [
    "COMM_ENV_VAR",
    "DEFAULT_COMM",
    "available_comms",
    "resolve_comm_name",
    "make_comm",
]

COMM_ENV_VAR = "REPRO_COMM"
DEFAULT_COMM = "virtual"

#: Every known backend name.  ``available_comms`` filters this by whether
#: the backend's dependency imports (only ``mpi`` is conditional); error
#: messages enumerate from here so they can never go stale.
_COMM_NAMES = ("mpi", "shm", "tcp", "virtual")


def _backend_importable(name: str) -> bool:
    if name == "mpi":
        from repro.comm.mpi import mpi_available

        return mpi_available()
    return True


def available_comms() -> tuple[str, ...]:
    """Instantiable communicator backend names, sorted.

    Enumerated dynamically from the known-backend table, keeping only
    those whose dependencies import in this environment (``mpi`` needs
    ``mpi4py``; everything else is dependency-free).
    """
    return tuple(n for n in _COMM_NAMES if _backend_importable(n))


def resolve_comm_name(name: str | None = None) -> str:
    """Resolve a comm backend name: argument > ``$REPRO_COMM`` > default.

    Unknown names raise ``ValueError`` listing every known backend; a
    known backend whose dependency is missing raises the typed
    :class:`~repro.comm.errors.CommUnavailableError` instead, so callers
    can distinguish a typo from a site-installation gap.
    """
    if name is None:
        name = os.environ.get(COMM_ENV_VAR, "").strip() or DEFAULT_COMM
    if name not in _COMM_NAMES:
        raise ValueError(
            f"unknown comm backend {name!r}; known: {_COMM_NAMES}, "
            f"available here: {available_comms()}"
        )
    if not _backend_importable(name):
        raise CommUnavailableError(
            f"comm backend {name!r} is registered but its dependency is not "
            f"importable in this environment; available: {available_comms()}"
        )
    return name


def make_comm(
    grid: RankGrid | tuple[int, int, int, int],
    name: str | None = None,
    trace: CommTrace | None = None,
    **kwargs,
):
    """Instantiate a communicator over ``grid`` by backend name.

    Backends are the entries of :func:`available_comms` (currently
    enumerated from ``_COMM_NAMES``; see the module docstring for what
    each one is).  Process-owning backends (every name except
    ``virtual``) own worker processes plus OS resources — close them
    (``with make_comm(...) as comm:`` or ``comm.close()``) when done; a
    shared ``atexit`` sweep (:func:`repro.comm.lifecycle.close_live_comms`)
    backstops drivers that die with one open.  Backend-specific keyword
    arguments (``timeout``, ``start_method``, ``fault_injector`` — the
    campaign layer's fault-injection hook — and for ``tcp`` also
    ``connect_timeout``, ``host``, ``port``, ``n_external``) are ignored
    by the ``virtual`` backend; ``virtual`` communicators satisfy the
    same context protocol as a no-op.
    """
    if not isinstance(grid, RankGrid):
        grid = RankGrid(tuple(grid))
    resolved = resolve_comm_name(name)
    if resolved == "shm":
        from repro.comm.shm import ShmComm

        return ShmComm(grid, trace=trace, **kwargs)
    if resolved == "tcp":
        from repro.comm.tcp import TcpComm

        return TcpComm(grid, trace=trace, **kwargs)
    if resolved == "mpi":
        from repro.comm.mpi import MpiComm

        return MpiComm(grid, trace=trace, **kwargs)
    if trace is not None:
        return VirtualComm(grid, trace=trace)
    return VirtualComm(grid)

"""Communicator registry: named SPMD backends behind one protocol.

Two backends, one data path:

``virtual``
    :class:`~repro.comm.VirtualComm` — all ranks sequential in one
    process.  Exact, dependency-free, works at any rank count; scaling
    curves come from the machine model replaying its trace.
``shm``
    :class:`~repro.comm.shm.ShmComm` — one OS process per rank over
    POSIX shared memory, real parallel halo exchange and overlapped
    Dslash.  Turns the E2/E3 scaling benchmarks from modelled into
    measured on the host's cores; bit-for-bit identical results.

Selection precedence mirrors the kernel registry: explicit ``comm=``
argument > ``REPRO_COMM`` environment variable > the ``virtual`` default.
"""

from __future__ import annotations

import os

from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace
from repro.comm.vcomm import VirtualComm

__all__ = [
    "COMM_ENV_VAR",
    "DEFAULT_COMM",
    "available_comms",
    "resolve_comm_name",
    "make_comm",
]

COMM_ENV_VAR = "REPRO_COMM"
DEFAULT_COMM = "virtual"

_COMM_NAMES = ("shm", "virtual")


def available_comms() -> tuple[str, ...]:
    """Registered communicator backend names, sorted."""
    return _COMM_NAMES


def resolve_comm_name(name: str | None = None) -> str:
    """Resolve a comm backend name: argument > ``$REPRO_COMM`` > default."""
    if name is None:
        name = os.environ.get(COMM_ENV_VAR, "").strip() or DEFAULT_COMM
    if name not in _COMM_NAMES:
        raise ValueError(
            f"unknown comm backend {name!r}; available: {available_comms()}"
        )
    return name


def make_comm(
    grid: RankGrid | tuple[int, int, int, int],
    name: str | None = None,
    trace: CommTrace | None = None,
    **kwargs,
):
    """Instantiate a communicator over ``grid`` by backend name.

    ``shm`` communicators own worker processes and shared segments — close
    them (``with make_comm(...) as comm:`` or ``comm.close()``) when done;
    an ``atexit`` sweep (:func:`repro.comm.shm.close_live_comms`) backstops
    drivers that die with one open.  ``shm``-only keyword arguments
    (``timeout``, ``start_method``, ``fault_injector`` — the campaign
    layer's fault-injection hook) are ignored by the ``virtual`` backend;
    ``virtual`` communicators satisfy the same context protocol as a no-op.
    """
    if not isinstance(grid, RankGrid):
        grid = RankGrid(tuple(grid))
    resolved = resolve_comm_name(name)
    if resolved == "shm":
        from repro.comm.shm import ShmComm

        return ShmComm(grid, trace=trace, **kwargs)
    if trace is not None:
        return VirtualComm(grid, trace=trace)
    return VirtualComm(grid)

"""Halo (ghost-shell) fields and the face-exchange primitive.

This is the communication pattern of the paper's Dslash: each rank extends
its local block by a ghost shell of width ``w`` in every lattice direction,
fills the shells from the face data of its six-to-eight Cartesian neighbours
(a *self*-wrap along undecomposed axes), and then applies the stencil to the
interior with no further neighbour logic.

Only face slabs are exchanged — a nearest-neighbour stencil never reads the
ghost corners, so they are left stale exactly as production halo codes do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace

__all__ = ["HaloField", "add_halo", "strip_halo", "halo_exchange", "face_bytes"]


@dataclass
class HaloField:
    """A rank-local array extended by ghost shells on the 4 site axes.

    ``data`` has extents ``local + 2*width`` on each site axis; site axes
    start at ``site_axis_start`` (0 for fermions, 1 for gauge fields).
    """

    data: np.ndarray
    width: int
    site_axis_start: int = 0

    @property
    def interior_shape(self) -> tuple[int, ...]:
        s0 = self.site_axis_start
        return tuple(n - 2 * self.width for n in self.data.shape[s0 : s0 + 4])

    def interior(self) -> np.ndarray:
        """View of the owned (non-ghost) region."""
        s0 = self.site_axis_start
        idx = [slice(None)] * self.data.ndim
        for mu in range(4):
            idx[s0 + mu] = slice(self.width, -self.width)
        return self.data[tuple(idx)]


def add_halo(local: np.ndarray, width: int = 1, site_axis_start: int = 0) -> HaloField:
    """Embed a local block into a ghost-extended array (ghosts zeroed)."""
    if width < 1:
        raise ValueError("halo width must be >= 1")
    pad = [(0, 0)] * site_axis_start + [(width, width)] * 4
    pad += [(0, 0)] * (local.ndim - site_axis_start - 4)
    data = np.pad(local, pad, mode="constant")
    return HaloField(data, width, site_axis_start)


def strip_halo(halo: HaloField) -> np.ndarray:
    """Contiguous copy of the interior."""
    return np.ascontiguousarray(halo.interior())


def face_bytes(halo: HaloField, mu: int) -> int:
    """Payload of one face message along ``mu`` (interior extents on the
    other axes; ghost corners are not sent)."""
    shape = list(halo.interior_shape)
    face_sites = 1
    for nu in range(4):
        if nu != mu:
            face_sites *= shape[nu]
    trailing = int(np.prod(halo.data.shape[halo.site_axis_start + 4 :], dtype=np.int64)) or 1
    lead = int(np.prod(halo.data.shape[: halo.site_axis_start], dtype=np.int64)) or 1
    return face_sites * halo.width * trailing * lead * halo.data.itemsize


def _axis_slice(halo: HaloField, mu: int, sl: slice) -> tuple[slice, ...]:
    idx = [slice(None)] * halo.data.ndim
    idx[halo.site_axis_start + mu] = sl
    return tuple(idx)


def halo_exchange(
    halos: list[HaloField],
    grid: RankGrid,
    trace: CommTrace | None = None,
    phases: tuple[complex, complex, complex, complex] | None = None,
) -> None:
    """Fill all ghost shells from neighbour face data, in place.

    The high-side ghost of rank ``r`` along ``mu`` receives the low-side
    interior boundary of its ``+mu`` neighbour (and vice versa).  Where the
    hop crosses the *global* lattice boundary the fermion boundary phase is
    applied: ``psi(x + N e_mu) = phase_mu psi(x)`` so the high ghost gets
    ``phase_mu * data`` and the low ghost gets ``conj(phase_mu) * data``.

    Exchanges between distinct ranks are recorded in ``trace``; wraps along
    undecomposed axes are local copies (not messages), as on a real machine.
    """
    if len(halos) != grid.nranks:
        raise ValueError(f"expected {grid.nranks} halo fields, got {len(halos)}")
    w = halos[0].width
    for mu in range(4):
        for r in grid.all_ranks():
            dst = halos[r]
            nbytes = face_bytes(dst, mu)

            # High ghost <- +mu neighbour's low interior slab.
            nb_hi = grid.neighbor(r, mu, +1)
            src = halos[nb_hi].data[_axis_slice(halos[nb_hi], mu, slice(w, 2 * w))]
            if phases is not None and grid.crosses_boundary(r, mu, +1):
                src = src * phases[mu]
            dst.data[_axis_slice(dst, mu, slice(-w, None))] = src
            if nb_hi != r and trace is not None:
                trace.record_halo(r, mu, +1, nbytes)

            # Low ghost <- -mu neighbour's high interior slab.
            nb_lo = grid.neighbor(r, mu, -1)
            src = halos[nb_lo].data[_axis_slice(halos[nb_lo], mu, slice(-2 * w, -w))]
            if phases is not None and grid.crosses_boundary(r, mu, -1):
                src = src * np.conj(phases[mu])
            dst.data[_axis_slice(dst, mu, slice(0, w))] = src
            if nb_lo != r and trace is not None:
                trace.record_halo(r, mu, -1, nbytes)

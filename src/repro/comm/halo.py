"""Halo (ghost-shell) fields and the face-exchange primitive.

This is the communication pattern of the paper's Dslash: each rank extends
its local block by a ghost shell of width ``w`` in every lattice direction,
fills the shells from the face data of its six-to-eight Cartesian neighbours
(a *self*-wrap along undecomposed axes), and then applies the stencil to the
interior with no further neighbour logic.

Only face slabs are exchanged, with *interior* extents on the orthogonal
axes — a nearest-neighbour stencil never reads the ghost corners, so they
are neither sent nor written, exactly as production halo codes do (and
exactly what :func:`face_bytes` charges).  Corner ghosts keep whatever the
allocation put there (zeros from :func:`add_halo`), which makes the filled
arrays deterministic and bit-comparable across communicator backends.

The face-slab index helpers here are the single source of truth for both
the sequential exchange below and the process-parallel pull-style exchange
in :mod:`repro.comm.shm` — the two backends copy exactly the same slabs.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

import numpy as np

from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace

__all__ = [
    "HaloField",
    "add_halo",
    "strip_halo",
    "halo_exchange",
    "face_bytes",
    "face_bytes_of_shape",
    "face_index",
    "record_exchange_trace",
]


@dataclass
class HaloField:
    """A rank-local array extended by ghost shells on the 4 site axes.

    ``data`` has extents ``local + 2*width`` on each site axis; site axes
    start at ``site_axis_start`` (0 for fermions, 1 for gauge fields).
    """

    data: np.ndarray
    width: int
    site_axis_start: int = 0

    @property
    def interior_shape(self) -> tuple[int, ...]:
        s0 = self.site_axis_start
        return tuple(n - 2 * self.width for n in self.data.shape[s0 : s0 + 4])

    def interior(self) -> np.ndarray:
        """View of the owned (non-ghost) region."""
        s0 = self.site_axis_start
        idx = [slice(None)] * self.data.ndim
        for mu in range(4):
            idx[s0 + mu] = slice(self.width, -self.width)
        return self.data[tuple(idx)]


def add_halo(local: np.ndarray, width: int = 1, site_axis_start: int = 0) -> HaloField:
    """Embed a local block into a ghost-extended array (ghosts zeroed)."""
    if width < 1:
        raise ValueError("halo width must be >= 1")
    pad = [(0, 0)] * site_axis_start + [(width, width)] * 4
    pad += [(0, 0)] * (local.ndim - site_axis_start - 4)
    data = np.pad(local, pad, mode="constant")
    return HaloField(data, width, site_axis_start)


def strip_halo(halo: HaloField) -> np.ndarray:
    """Contiguous copy of the interior."""
    return np.ascontiguousarray(halo.interior())


def face_bytes_of_shape(
    ext_shape: tuple[int, ...], site_axis_start: int, width: int, mu: int, itemsize: int
) -> int:
    """Payload of one face message along ``mu`` for a halo-extended shape."""
    face_sites = 1
    for nu in range(4):
        if nu != mu:
            face_sites *= ext_shape[site_axis_start + nu] - 2 * width
    trailing = int(math.prod(ext_shape[site_axis_start + 4 :])) or 1
    lead = int(math.prod(ext_shape[:site_axis_start])) or 1
    return face_sites * width * trailing * lead * itemsize


def face_bytes(halo: HaloField, mu: int) -> int:
    """Payload of one face message along ``mu`` (interior extents on the
    other axes; ghost corners are not sent)."""
    return face_bytes_of_shape(
        halo.data.shape, halo.site_axis_start, halo.width, mu, halo.data.itemsize
    )


#: Face-slab roles: ghost shells (written) and interior source slabs (read).
_FACE_SLABS = {
    "ghost_lo": lambda w: slice(0, w),
    "ghost_hi": lambda w: slice(-w, None),
    "src_lo": lambda w: slice(w, 2 * w),
    "src_hi": lambda w: slice(-2 * w, -w),
}


def face_index(
    ndim: int, site_axis_start: int, width: int, mu: int, role: str
) -> tuple[slice, ...]:
    """Index tuple selecting one face slab of a halo-extended array.

    ``role`` is one of ``ghost_lo``/``ghost_hi`` (the shells an exchange
    writes) or ``src_lo``/``src_hi`` (the interior boundary slabs it
    reads).  Orthogonal site axes take interior extents, so corners are
    excluded on both sides of the copy.
    """
    idx: list[slice] = [slice(None)] * ndim
    for nu in range(4):
        idx[site_axis_start + nu] = slice(width, -width)
    idx[site_axis_start + mu] = _FACE_SLABS[role](width)
    return tuple(idx)


def record_exchange_trace(
    trace: CommTrace | None,
    grid: RankGrid,
    nbytes_by_mu: list[int] | tuple[int, ...],
) -> None:
    """Log the halo events of one full exchange, in canonical order.

    The canonical order (``mu`` outer, rank inner, high then low
    neighbour, self-wraps skipped) is shared by every backend so traces
    stay comparable event-for-event.
    """
    if trace is None:
        return
    for mu in range(4):
        for r in grid.all_ranks():
            if grid.neighbor(r, mu, +1) != r:
                trace.record_halo(r, mu, +1, nbytes_by_mu[mu])
            if grid.neighbor(r, mu, -1) != r:
                trace.record_halo(r, mu, -1, nbytes_by_mu[mu])


def halo_exchange(
    halos: list[HaloField],
    grid: RankGrid,
    trace: CommTrace | None = None,
    phases: tuple[complex, complex, complex, complex] | None = None,
) -> None:
    """Fill all ghost shells from neighbour face data, in place.

    The high-side ghost of rank ``r`` along ``mu`` receives the low-side
    interior boundary of its ``+mu`` neighbour (and vice versa).  Where the
    hop crosses the *global* lattice boundary the fermion boundary phase is
    applied: ``psi(x + N e_mu) = phase_mu psi(x)`` so the high ghost gets
    ``phase_mu * data`` and the low ghost gets ``conj(phase_mu) * data``.

    Exchanges between distinct ranks are recorded in ``trace``; wraps along
    undecomposed axes are local copies (not messages), as on a real machine.
    """
    if len(halos) != grid.nranks:
        raise ValueError(f"expected {grid.nranks} halo fields, got {len(halos)}")
    w = halos[0].width
    for mu in range(4):
        for r in grid.all_ranks():
            dst = halos[r]
            ndim, s0 = dst.data.ndim, dst.site_axis_start
            nbytes = face_bytes(dst, mu)

            # High ghost <- +mu neighbour's low interior slab.
            nb_hi = grid.neighbor(r, mu, +1)
            src = halos[nb_hi].data[face_index(ndim, s0, w, mu, "src_lo")]
            ghost = dst.data[face_index(ndim, s0, w, mu, "ghost_hi")]
            ghost[...] = src
            if phases is not None and grid.crosses_boundary(r, mu, +1):
                ghost *= phases[mu]
            if nb_hi != r and trace is not None:
                trace.record_halo(r, mu, +1, nbytes)

            # Low ghost <- -mu neighbour's high interior slab.
            nb_lo = grid.neighbor(r, mu, -1)
            src = halos[nb_lo].data[face_index(ndim, s0, w, mu, "src_hi")]
            ghost = dst.data[face_index(ndim, s0, w, mu, "ghost_lo")]
            ghost[...] = src
            if phases is not None and grid.crosses_boundary(r, mu, -1):
                ghost *= np.conj(phases[mu])
            if nb_lo != r and trace is not None:
                trace.record_halo(r, mu, -1, nbytes)

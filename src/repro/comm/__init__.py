"""Domain decomposition and the SPMD communication layer.

The paper's runs decompose the global lattice over a 4-D Cartesian grid of
MPI ranks mapped onto the BlueGene/Q torus.  We reproduce the *data path*
exactly — scatter to rank-local arrays, pack faces, exchange halos, stencil
over the interior — behind one communicator protocol with several backends:

``VirtualComm``
    executes all ranks sequentially inside one process, recording every
    message in a :class:`CommTrace` that the machine model converts into
    time at scale;
``ShmComm``
    runs each rank as a real OS process with rank-local fields in shared
    memory, so halo exchange and the interior/boundary-split Dslash
    execute genuinely in parallel on the host's cores;
``TcpComm``
    runs each rank as an OS process reachable only over TCP sockets with
    CRC-framed messages, so ranks may live on *different hosts* — the
    cross-machine measured mode (``python -m repro.comm.tcp --connect``
    joins ranks from elsewhere);
``MpiComm``
    the same master-driven interface over ``mpi4py`` when it is
    importable (a tuned-fabric fast path; absent otherwise).

Select with :func:`make_comm` / the ``REPRO_COMM`` environment variable.
The substitution is validated by the backend-parametrised parity suite
(``tests/test_comm_backends.py``), which requires the decomposed Dslash,
halo exchange, reductions, and CG iterates to agree bit-for-bit across
backends and with the single-domain kernel for every rank grid.
"""

from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace, HaloEvent, CollectiveEvent, ComputeEvent
from repro.comm.vcomm import VirtualComm
from repro.comm.shm import ShmComm
from repro.comm.tcp import TcpComm
from repro.comm.decomposition import Decomposition
from repro.comm.errors import (
    CommError,
    CommConnectError,
    CommPeerError,
    CommTimeoutError,
    CommUnavailableError,
    TornFrameError,
)
from repro.comm.halo import (
    HaloField,
    halo_exchange,
    add_halo,
    strip_halo,
    face_bytes,
    face_bytes_of_shape,
    face_index,
    record_exchange_trace,
)
from repro.comm.lifecycle import close_live_comms
from repro.comm.registry import (
    COMM_ENV_VAR,
    DEFAULT_COMM,
    available_comms,
    resolve_comm_name,
    make_comm,
)
from repro.comm.topology import TorusTopology

__all__ = [
    "RankGrid",
    "CommTrace",
    "HaloEvent",
    "CollectiveEvent",
    "ComputeEvent",
    "VirtualComm",
    "ShmComm",
    "TcpComm",
    "Decomposition",
    "CommError",
    "CommConnectError",
    "CommPeerError",
    "CommTimeoutError",
    "CommUnavailableError",
    "TornFrameError",
    "HaloField",
    "halo_exchange",
    "add_halo",
    "strip_halo",
    "face_bytes",
    "face_bytes_of_shape",
    "face_index",
    "record_exchange_trace",
    "close_live_comms",
    "COMM_ENV_VAR",
    "DEFAULT_COMM",
    "available_comms",
    "resolve_comm_name",
    "make_comm",
    "TorusTopology",
]

"""Domain decomposition and the virtual MPI layer.

The paper's runs decompose the global lattice over a 4-D Cartesian grid of
MPI ranks mapped onto the BlueGene/Q torus.  We reproduce the *data path*
exactly — scatter to rank-local arrays, pack faces, exchange halos, stencil
over the interior — executing all ranks sequentially inside one process
(``VirtualComm``).  Every message is recorded in a :class:`CommTrace`; the
machine model converts traces into time at scale.

This substitution is validated by tests that require the decomposed Dslash
to agree bit-for-bit with the single-domain kernel for every rank grid.
"""

from repro.comm.rankgrid import RankGrid
from repro.comm.trace import CommTrace, HaloEvent, CollectiveEvent, ComputeEvent
from repro.comm.vcomm import VirtualComm
from repro.comm.decomposition import Decomposition
from repro.comm.halo import (
    HaloField,
    halo_exchange,
    add_halo,
    strip_halo,
    face_bytes,
)
from repro.comm.topology import TorusTopology

__all__ = [
    "RankGrid",
    "CommTrace",
    "HaloEvent",
    "CollectiveEvent",
    "ComputeEvent",
    "VirtualComm",
    "Decomposition",
    "HaloField",
    "halo_exchange",
    "add_halo",
    "strip_halo",
    "face_bytes",
    "TorusTopology",
]

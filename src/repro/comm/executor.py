"""Transport-agnostic rank-process command executor.

A distributed backend's rank process is a loop: receive a command from the
master, act on rank-local blocks (allocate, fill, exchange ghosts with
peers, stencil), acknowledge.  Everything about that loop except *how
bytes move* is identical whether the peers talk over TCP sockets
(:mod:`repro.comm.tcp`) or an MPI communicator (:mod:`repro.comm.mpi`), so
it lives here once: :class:`RankExecutor` holds the block table and the
command semantics, and a small :class:`PeerTransport` object supplies
``begin_sends``/``recv``.

The halo exchange is the pull-free *push* formulation of the same data
motion as :func:`repro.comm.halo.halo_exchange`: along each decomposed
axis the rank sends its ``src_hi`` interior slab to the ``+mu`` neighbour
(who stores it as ``ghost_lo``) and its ``src_lo`` slab to the ``-mu``
neighbour (``ghost_hi``); undecomposed axes are local copies.  Slab
indices come from :func:`~repro.comm.halo.face_index` — the single source
of truth shared with the sequential and shm backends — and boundary
phases are applied by the *receiver* after the copy, in the same order as
``halo_exchange``, so the filled arrays are bit-identical across every
backend.
"""

from __future__ import annotations

import threading
import traceback

import numpy as np

from repro.comm.frame import face_tag
from repro.comm.halo import face_index
from repro.comm.rankgrid import RankGrid

__all__ = ["PeerTransport", "RankExecutor"]


class PeerTransport:
    """Duck-typed peer data mover (see :class:`repro.comm.tcp._SocketPeers`).

    ``send_one(peer_rank, tag, bytes)`` pushes one tagged message (run on
    a helper thread by the executor so sends and receives overlap);
    ``recv(peer_rank, tag)`` blocks for one tagged message from a peer,
    raising a typed :class:`~repro.comm.errors.CommError` on timeout,
    peer death, or a torn frame.
    """

    def send_one(self, peer: int, tag: int, payload: bytes) -> None:
        raise NotImplementedError

    def recv(self, peer: int, tag: int) -> bytes:
        raise NotImplementedError


class _ThreadedSends:
    """Run a transport's blocking sends on a helper thread.

    Concurrent send/recv is what makes the exchange deadlock-free: every
    rank can be mid-``sendall`` of a face larger than the socket buffer
    while its main thread drains the peer's frames.
    """

    def __init__(self, send_one, sends: list[tuple[int, int, bytes]]) -> None:
        self._error: BaseException | None = None

        def run() -> None:
            try:
                for peer, tag, payload in sends:
                    send_one(peer, tag, payload)
            except BaseException as e:  # re-raised by join() on the main thread
                self._error = e

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()

    def join(self) -> None:
        self._thread.join()
        if self._error is not None:
            raise self._error


class RankExecutor:
    """One rank's block table + command semantics, independent of transport."""

    def __init__(self, rank: int, grid: RankGrid, peers: PeerTransport) -> None:
        from repro.kernels.halo import HaloStencil

        self.rank = int(rank)
        self.grid = grid
        self.peers = peers
        self.blocks: dict[str, np.ndarray] = {}
        self._stencil = HaloStencil()

    # -- block lifecycle ------------------------------------------------------

    def declare(self, specs: list[tuple[str, tuple[int, ...], str]]) -> None:
        """Allocate one zero-filled rank-local block per ``(key, shape, dtype)``."""
        for key, shape, dtype in specs:
            self.blocks[key] = np.zeros(tuple(shape), dtype=np.dtype(dtype))

    def upload(self, key: str, raw: bytes) -> None:
        """Replace a block's bytes with the master's mirror (full array)."""
        arr = self.blocks[key]
        arr[...] = np.frombuffer(raw, dtype=arr.dtype).reshape(arr.shape)

    def download(self, key: str) -> bytes:
        """The block's current bytes, for the master's mirror."""
        return self.blocks[key].tobytes()

    # -- halo exchange --------------------------------------------------------

    def exchange(
        self,
        key: str,
        width: int,
        site_axis_start: int,
        phases: tuple[complex, complex, complex, complex] | None,
    ) -> None:
        """Fill this rank's ghost shells: peer messages + local wraps.

        Sends run on a helper thread while this thread receives, so every
        rank makes progress regardless of face size; receives are matched
        by ``(peer, tag)`` so the two faces a width-2 grid axis routes over
        one link cannot be confused.
        """
        arr = self.blocks[key]
        ndim, s0, w, rank, grid = arr.ndim, site_axis_start, width, self.rank, self.grid

        sends: list[tuple[int, int, bytes]] = []
        for mu in range(4):
            nb_hi = grid.neighbor(rank, mu, +1)
            if nb_hi == rank:
                continue
            nb_lo = grid.neighbor(rank, mu, -1)
            src_hi = arr[face_index(ndim, s0, w, mu, "src_hi")]
            src_lo = arr[face_index(ndim, s0, w, mu, "src_lo")]
            sends.append((nb_hi, face_tag(mu, True), np.ascontiguousarray(src_hi).tobytes()))
            sends.append((nb_lo, face_tag(mu, False), np.ascontiguousarray(src_lo).tobytes()))
        pending = _ThreadedSends(self.peers.send_one, sends) if sends else None

        try:
            for mu in range(4):
                nb_hi = grid.neighbor(rank, mu, +1)
                nb_lo = grid.neighbor(rank, mu, -1)
                ghost_hi = arr[face_index(ndim, s0, w, mu, "ghost_hi")]
                ghost_lo = arr[face_index(ndim, s0, w, mu, "ghost_lo")]
                if nb_hi == rank:
                    # Undecomposed axis: the wrap is a local copy, exactly as
                    # the sequential exchange performs it.
                    ghost_hi[...] = arr[face_index(ndim, s0, w, mu, "src_lo")]
                else:
                    buf = self.peers.recv(nb_hi, face_tag(mu, False))
                    ghost_hi[...] = np.frombuffer(buf, arr.dtype).reshape(ghost_hi.shape)
                if phases is not None and grid.crosses_boundary(rank, mu, +1):
                    ghost_hi *= phases[mu]
                if nb_lo == rank:
                    ghost_lo[...] = arr[face_index(ndim, s0, w, mu, "src_hi")]
                else:
                    buf = self.peers.recv(nb_lo, face_tag(mu, True))
                    ghost_lo[...] = np.frombuffer(buf, arr.dtype).reshape(ghost_lo.shape)
                if phases is not None and grid.crosses_boundary(rank, mu, -1):
                    ghost_lo *= np.conj(phases[mu])
        finally:
            if pending is not None:
                pending.join()

    # -- compute --------------------------------------------------------------

    def dagger(self, u_key: str, udag_key: str) -> None:
        from repro.kernels.halo import dagger_halo_links

        dagger_halo_links(self.blocks[u_key], out=self.blocks[udag_key])

    def dslash(
        self,
        psi_key: str,
        out_key: str,
        u_key: str,
        udag_key: str,
        width: int,
        phases: tuple[complex, complex, complex, complex],
        diag: float,
        overlap: bool,
    ) -> None:
        """One Wilson apply on this rank: exchange + box stencil.

        With ``overlap`` the deep interior (which reads no ghosts) is
        stenciled *before* the exchange, hiding face traffic behind
        compute; the result is bit-identical either way because the boxes
        partition the interior.
        """
        from repro.kernels.halo import full_box, split_boxes

        psi = self.blocks[psi_key]
        out = self.blocks[out_key]
        u = self.blocks[u_key]
        udag = self.blocks[udag_key]
        local = out.shape[:4]
        if overlap:
            deep, boundary = split_boxes(local, width)
            if deep is not None:
                self._stencil.wilson_box_into(out, u, udag, psi, width, deep, diag)
            self.exchange(psi_key, width, 0, phases)
            for box in boundary:
                self._stencil.wilson_box_into(out, u, udag, psi, width, box, diag)
        else:
            self.exchange(psi_key, width, 0, phases)
            self._stencil.wilson_box_into(out, u, udag, psi, width, full_box(local), diag)

    # -- command dispatch -----------------------------------------------------

    def execute(self, cmd: tuple, raw: bytes | None):
        """Run one command; return ``(meta, raw_reply)`` for the ack."""
        op = cmd[0]
        if op == "declare":
            self.declare(cmd[1])
        elif op == "upload":
            self.upload(cmd[1], raw)
        elif op == "download":
            return None, self.download(cmd[1])
        elif op == "exchange":
            _, key, width, s0, phases = cmd
            self.exchange(key, width, s0, phases)
        elif op == "exchange_frame":
            _, key, width, s0, phases = cmd
            self.upload(key, raw)
            self.exchange(key, width, s0, phases)
            return None, self.download(key)
        elif op == "dagger":
            self.dagger(cmd[1], cmd[2])
        elif op == "dslash_frame":
            _, psi_key, out_key, u_key, udag_key, width, phases, diag, overlap = cmd
            self.upload(psi_key, raw)
            self.dslash(psi_key, out_key, u_key, udag_key, width, phases, diag, overlap)
            return None, self.download(out_key)
        elif op == "reduce":
            return None, raw  # gather-at-root echo: the master sums in rank order
        elif op == "sleep":
            # Fault-drill hook: wedge this rank so the master's recv deadline
            # (not a deadlock) decides the outcome.
            import time

            time.sleep(float(cmd[1]))
        elif op == "telemetry":
            from repro.telemetry import registry as _tm_registry

            return _tm_registry.snapshot(), None
        else:
            raise ValueError(f"unknown rank command {op!r}")
        return None, None


def format_rank_error() -> str:
    """The traceback string a rank ships back in an ``error`` ack."""
    return traceback.format_exc()
